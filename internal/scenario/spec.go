// Package scenario is the declarative stress harness for the serving
// stack: a JSON Spec describes a fleet, a telemetry-generator overlay, a
// drift schedule, a fault-injection schedule, a workload cost regime and
// the lifecycle/guard configuration; Compile turns it into one
// deterministic telemetry event stream; Run drives the full live stack —
// Controller + OnlineLearner + Guard — through that stream and scores
// survival (lost node-hours, recall under attack, veto/rollback/swap
// churn, dropped experience), asserting the graceful-degradation
// contract throughout: serving never blocks or panics, tripped budgets
// degrade mitigations to ActionNone, and regressions roll back along the
// model lineage chain.
//
// Everything composes deterministically from Spec.Seed: the same spec
// produces byte-identical Summary encodings across runs, GOMAXPROCS
// settings and the race detector, which is what lets the named scenarios
// under scenarios/ carry golden summary artifacts as regression tests
// over the whole drift→retrain→guard→promote loop.
//
//uerl:deterministic
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/errlog"
)

// Fault kinds accepted by FaultSpec.Kind: the deterministic injection
// primitives a scenario composes its adversarial error process from.
const (
	// FaultBurst injects RowHammer-style uncorrected-error burst trains:
	// Trains repetitions of UEs uncorrected errors striking round-robin
	// across a node range, optionally preceded by a CE storm prefix that
	// shapes the predictor's features the way an attacker would.
	FaultBurst = "burst"
	// FaultRamp scales the corrected-error counts carried by CE records
	// in a window linearly from 1× at StartDay to RateMult× at EndDay —
	// the workload-dependent error-rate swing of Mukhanov et al.
	FaultRamp = "ramp"
	// FaultBlackout drops every telemetry event from a node range in a
	// window: the nodes go dark (rack power loss, collector outage).
	FaultBlackout = "blackout"
	// FaultDelay delivers a node range's events late by DelayMinutes
	// within a window (collector backlog); delivered timestamps shift.
	FaultDelay = "delay"
	// FaultDuplicate re-delivers a fraction of a node range's events in
	// a window one second late (at-least-once transport).
	FaultDuplicate = "duplicate"
)

// Worker-fault kinds accepted by WorkerFaultSpec.Kind: the serving-layer
// faults a scenario schedules against the distributed fleet (requires a
// Serving section).
const (
	// WorkerKill crashes the worker: its in-memory tracker state is gone
	// and a later rejoin comes back empty, forcing the coordinator to
	// rebuild the worker's nodes from the event journal.
	WorkerKill = "kill"
	// WorkerHang makes the worker unresponsive while retaining state:
	// deliveries fail fast with a deterministic timeout until it rejoins.
	WorkerHang = "hang"
	// WorkerRejoin brings a killed or hung worker back; the coordinator
	// discovers it on its next probe (Reconcile at stream end probes
	// unconditionally).
	WorkerRejoin = "rejoin"
)

// Spec is the declarative description of one scenario. The zero value is
// not runnable: Nodes and DurationDays are required, everything else
// defaults via Validate/ApplyDefaults. Specs are plain data — encode one
// with Encode, load one with Decode, and keep named specs under
// scenarios/ next to their golden summaries.
type Spec struct {
	// Name identifies the scenario in summaries and reports.
	Name string `json:"name"`
	// Description says what the scenario stresses.
	Description string `json:"description,omitempty"`
	// Seed drives every random choice in the scenario — telemetry
	// generation, fault injection and the learner — so a spec replays
	// bit-identically.
	Seed int64 `json:"seed"`
	// DurationDays is the scenario length.
	DurationDays float64 `json:"duration_days"`
	// Fleet shapes the simulated node population.
	Fleet FleetSpec `json:"fleet"`
	// Telemetry multiplies the baseline generator rates (aging, storm
	// frequency, UE pressure) relative to the calibrated defaults.
	Telemetry OverlaySpec `json:"telemetry,omitempty"`
	// Drift is the schedule of fault-behaviour shifts: at each phase's
	// AtDay the generator re-parameterizes (relative to the phase-0
	// configuration, not cumulatively).
	Drift []DriftPhase `json:"drift,omitempty"`
	// Faults is the fault-injection schedule applied on top of the
	// generated stream, in order.
	Faults []FaultSpec `json:"faults,omitempty"`
	// Workload sets the cost regime: the potential-UE cost schedule and
	// the per-mitigation checkpoint cost.
	Workload WorkloadSpec `json:"workload,omitempty"`
	// Lifecycle configures the learner and (optionally) the guard.
	Lifecycle LifecycleSpec `json:"lifecycle,omitempty"`
	// Serving, when set, runs the scenario on the distributed fleet
	// serving layer instead of a single in-process Controller, with its
	// own worker-fault schedule; the summary gains a Fleet section.
	Serving *ServingSpec `json:"serving,omitempty"`
}

// FleetSpec shapes the simulated population.
type FleetSpec struct {
	// Nodes is the fleet size (required).
	Nodes int `json:"nodes"`
	// DIMMsPerNode defaults to the MareNostrum 3 value (8).
	DIMMsPerNode int `json:"dimms_per_node,omitempty"`
	// ManufacturerShares overrides the per-manufacturer node shares
	// (defaults to the paper's mix).
	ManufacturerShares *[errlog.NumManufacturers]float64 `json:"manufacturer_shares,omitempty"`
	// FaultMultiplier overrides the per-manufacturer fault incidence
	// multipliers.
	FaultMultiplier *[errlog.NumManufacturers]float64 `json:"fault_multiplier,omitempty"`
}

// OverlaySpec multiplies baseline telemetry-generator rates. Zero fields
// mean "unchanged" (multiplier 1).
type OverlaySpec struct {
	// CERateMult scales the per-faulty-DIMM CE record rate.
	CERateMult float64 `json:"ce_rate_mult,omitempty"`
	// CEBurstMult scales the mean corrected-error count per CE record.
	CEBurstMult float64 `json:"ce_burst_mult,omitempty"`
	// FaultyFractionMult scales the fraction of DIMMs that develop
	// faults — the DIMM aging knob.
	FaultyFractionMult float64 `json:"faulty_fraction_mult,omitempty"`
	// StormMult scales the non-fatal CE-storm frequency.
	StormMult float64 `json:"storm_mult,omitempty"`
	// UEMult scales the signaled and sudden UE counts.
	UEMult float64 `json:"ue_mult,omitempty"`
}

// zero reports whether the overlay changes nothing.
func (o OverlaySpec) zero() bool { return o == OverlaySpec{} }

// DriftPhase re-parameterizes the generator from AtDay on. Multipliers
// and overrides are relative to the scenario's phase-0 configuration
// (base + Telemetry overlay), so an aging curve lists increasing
// multipliers phase by phase.
type DriftPhase struct {
	// AtDay is the phase boundary; phases must be strictly increasing
	// and inside (0, DurationDays).
	AtDay float64 `json:"at_day"`
	// Overlay scales the phase-0 rates for this phase.
	Overlay OverlaySpec `json:"overlay,omitempty"`
	// ManufacturerShares shifts the node-population manufacturer mix for
	// this phase (a procurement wave replacing hardware).
	ManufacturerShares *[errlog.NumManufacturers]float64 `json:"manufacturer_shares,omitempty"`
	// FaultMultiplier shifts the per-manufacturer fault incidence.
	FaultMultiplier *[errlog.NumManufacturers]float64 `json:"fault_multiplier,omitempty"`
}

// FaultSpec is one entry of the injection schedule. Kind selects the
// primitive; the other fields parameterize it (see the Fault* constants
// for which apply).
type FaultSpec struct {
	Kind string `json:"kind"`
	// StartDay anchors the fault; for FaultBurst it is the first train's
	// strike time.
	StartDay float64 `json:"start_day"`
	// EndDay closes the window for the windowed kinds (ramp, blackout,
	// delay, duplicate); ignored by burst.
	EndDay float64 `json:"end_day,omitempty"`
	// FirstNode and Nodes select the node range [FirstNode,
	// FirstNode+Nodes); Nodes 0 means the whole fleet.
	FirstNode int `json:"first_node,omitempty"`
	Nodes     int `json:"nodes,omitempty"`

	// UEs per train (burst).
	UEs int `json:"ues,omitempty"`
	// SpacingSeconds between a train's UEs (burst; default 15).
	SpacingSeconds float64 `json:"spacing_seconds,omitempty"`
	// Trains repeats the burst (burst; default 1).
	Trains int `json:"trains,omitempty"`
	// TrainGapHours separates train starts (burst; default 6).
	TrainGapHours float64 `json:"train_gap_hours,omitempty"`
	// CEPrefix injects this many corrected-error records in the minutes
	// before each train, one second apart (burst attack shaping).
	CEPrefix int `json:"ce_prefix,omitempty"`

	// RateMult is the ramp's terminal count multiplier (ramp).
	RateMult float64 `json:"rate_mult,omitempty"`
	// DelayMinutes shifts delivery (delay).
	DelayMinutes float64 `json:"delay_minutes,omitempty"`
	// Fraction of events re-delivered (duplicate).
	Fraction float64 `json:"fraction,omitempty"`
}

// windowed reports whether the kind uses the [StartDay, EndDay) window.
func (f FaultSpec) windowed() bool {
	switch f.Kind {
	case FaultRamp, FaultBlackout, FaultDelay, FaultDuplicate:
		return true
	}
	return false
}

// WorkloadSpec is the cost regime: what a UE costs and what a mitigation
// (checkpoint) costs. A slow-parallel-FS regime raises the mitigation
// cost; the phase schedule models workload-dependent potential loss.
type WorkloadSpec struct {
	// CostNodeHours is the potential/realized UE cost (default 100).
	CostNodeHours float64 `json:"cost_node_hours,omitempty"`
	// MitigationCostNodeMinutes is the per-checkpoint cost (default 2;
	// a slow parallel filesystem pushes it up an order of magnitude).
	MitigationCostNodeMinutes float64 `json:"mitigation_cost_node_minutes,omitempty"`
	// Restartable selects whether a mitigation establishes a restart
	// point (default true).
	Restartable *bool `json:"restartable,omitempty"`
	// Phases overrides CostNodeHours piecewise from each AtDay on —
	// day/night or campaign-dependent job value swings.
	Phases []CostPhase `json:"phases,omitempty"`
}

// CostPhase sets the potential-UE cost from AtDay on.
type CostPhase struct {
	AtDay         float64 `json:"at_day"`
	CostNodeHours float64 `json:"cost_node_hours"`
}

// LifecycleSpec configures the OnlineLearner driving the scenario and,
// when Guard is set, the production guardrails around it.
type LifecycleSpec struct {
	// InitialPolicy is "always" or "never" (default "always").
	InitialPolicy string `json:"initial_policy,omitempty"`
	// DriftThreshold and DriftWindow parameterize drift detection
	// (defaults 8 and 256).
	DriftThreshold float64 `json:"drift_threshold,omitempty"`
	DriftWindow    int     `json:"drift_window,omitempty"`
	// RetrainMin is the minimum new transitions between retrains
	// (default 256); EpochSteps the gradient steps per epoch (default 64).
	RetrainMin int `json:"retrain_min,omitempty"`
	EpochSteps int `json:"epoch_steps,omitempty"`
	// ShadowDecisions and ShadowUEs gate promotion judgement (defaults
	// 128 and 1). ShadowUEs may be 0 — the configuration the guard
	// exists to protect, where a do-nothing candidate can win a quiet
	// window on spend alone.
	ShadowDecisions int  `json:"shadow_decisions,omitempty"`
	ShadowUEs       *int `json:"shadow_ues,omitempty"`
	// ExperienceCapacity bounds the experience stream (0 = learner
	// default); overflow drops oldest and is counted in the summary.
	ExperienceCapacity int `json:"experience_capacity,omitempty"`
	// Guard, when set, runs the scenario behind the guardrails.
	Guard *GuardSpec `json:"guard,omitempty"`
}

// GuardSpec configures the production guardrails.
type GuardSpec struct {
	// NodeBudgetNodeHours caps per-node checkpoint spend per sliding
	// NodeWindowHours (default window 24h); 0 disables.
	NodeBudgetNodeHours float64 `json:"node_budget_node_hours,omitempty"`
	NodeWindowHours     float64 `json:"node_window_hours,omitempty"`
	// FleetMitigations caps fleet-wide mitigations per sliding
	// FleetWindowHours (default window 1h); 0 disables.
	FleetMitigations int     `json:"fleet_mitigations,omitempty"`
	FleetWindowHours float64 `json:"fleet_window_hours,omitempty"`
	// PromotionsPerDay caps promotions per sliding 24h; 0 disables.
	PromotionsPerDay int `json:"promotions_per_day,omitempty"`
	// Approve is "auto" (default) or "deny" (promotion freeze).
	Approve string `json:"approve,omitempty"`
	// ProbationDecisions is the post-promotion probation window (default
	// 4096; 0 disables rollback); ProbationToleranceNH the regression
	// tolerance (default 5).
	ProbationDecisions   int      `json:"probation_decisions,omitempty"`
	ProbationToleranceNH *float64 `json:"probation_tolerance_nh,omitempty"`
}

// ServingSpec runs the scenario on the distributed serving layer: a
// fleet coordinator shards the node population across Workers in-process
// workers over the deterministic channel transport, and the lifecycle
// learner drives the coordinator exactly as it would a single
// Controller. The Faults schedule kills, hangs and rejoins workers
// mid-stream, exercising failover replay and graceful degradation.
//
// With a Serving section the scenario's GuardSpec lowers to per-worker
// budget enforcement (each worker wraps its Controller in a Guard);
// the promotion/approval/probation knobs are lifecycle-level features a
// worker guard cannot arbitrate and are rejected by Validate.
type ServingSpec struct {
	// Workers is the fleet width (required, positive).
	Workers int `json:"workers"`
	// JournalCapacity bounds the per-node failover-replay journal
	// (default 512 events per node); events trimmed before a rebuild
	// needed them surface as Decision.StaleEvents.
	JournalCapacity int `json:"journal_capacity,omitempty"`
	// DedupWindowSeconds drops journal re-appends of a payload-identical
	// event within the window — the at-least-once-transport defense
	// (0 disables).
	DedupWindowSeconds float64 `json:"dedup_window_seconds,omitempty"`
	// FailureThreshold is the consecutive-failure count declaring a
	// worker dead (default 3).
	FailureThreshold int `json:"failure_threshold,omitempty"`
	// RetryBackoffSeconds is the base telemetry-time retry backoff for
	// suspect/down workers (default 30s), doubling with ±50%
	// deterministic jitter.
	RetryBackoffSeconds float64 `json:"retry_backoff_seconds,omitempty"`
	// Faults is the worker-fault schedule in non-decreasing at_day
	// order; each fault applies just before the first event at or after
	// its time.
	Faults []WorkerFaultSpec `json:"faults,omitempty"`
}

// WorkerFaultSpec schedules one serving-layer fault.
type WorkerFaultSpec struct {
	// Worker indexes the target in [0, Workers).
	Worker int `json:"worker"`
	// Kind is "kill", "hang" or "rejoin" (see the Worker* constants).
	Kind string `json:"kind"`
	// AtDay is when the fault strikes, inside (0, DurationDays).
	AtDay float64 `json:"at_day"`
}

// Decode parses a Spec from JSON. Unknown fields are rejected — a typo'd
// knob must not silently run the default scenario.
func Decode(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	// Trailing garbage after the JSON document is a malformed spec too.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec document")
	}
	return s, nil
}

// Encode renders the spec canonically: two-space indented JSON with a
// trailing newline, fields in declaration order, defaults left implicit.
// Encode∘Decode is a fixed point for any valid spec.
func Encode(s Spec) ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding spec: %w", err)
	}
	return append(data, '\n'), nil
}

// Validate reports the first specification error. A valid spec is
// runnable as-is: every schedule is inside the scenario window, no
// numeric field is NaN/Inf or negative where a magnitude is required,
// and same-kind fault windows never overlap on overlapping node ranges
// (an overlap would make the injection order significant, breaking the
// declarative reading of the schedule).
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if err := finite("duration_days", s.DurationDays); err != nil {
		return err
	}
	if s.DurationDays <= 0 {
		return fmt.Errorf("scenario: duration_days must be positive, got %v", s.DurationDays)
	}
	if s.Fleet.Nodes <= 0 {
		return fmt.Errorf("scenario: fleet.nodes must be positive, got %d", s.Fleet.Nodes)
	}
	if s.Fleet.DIMMsPerNode < 0 {
		return fmt.Errorf("scenario: fleet.dimms_per_node must be non-negative, got %d", s.Fleet.DIMMsPerNode)
	}
	if err := validShares("fleet.manufacturer_shares", s.Fleet.ManufacturerShares); err != nil {
		return err
	}
	if err := validShares("fleet.fault_multiplier", s.Fleet.FaultMultiplier); err != nil {
		return err
	}
	if err := s.Telemetry.validate("telemetry"); err != nil {
		return err
	}
	prev := 0.0
	for i, d := range s.Drift {
		if err := finite(fmt.Sprintf("drift[%d].at_day", i), d.AtDay); err != nil {
			return err
		}
		if d.AtDay <= prev || d.AtDay >= s.DurationDays {
			return fmt.Errorf("scenario: drift[%d].at_day %v overlaps the previous phase or leaves the scenario window (phases must be strictly increasing inside (0, %v))",
				i, d.AtDay, s.DurationDays)
		}
		prev = d.AtDay
		if err := d.Overlay.validate(fmt.Sprintf("drift[%d].overlay", i)); err != nil {
			return err
		}
		if err := validShares(fmt.Sprintf("drift[%d].manufacturer_shares", i), d.ManufacturerShares); err != nil {
			return err
		}
		if err := validShares(fmt.Sprintf("drift[%d].fault_multiplier", i), d.FaultMultiplier); err != nil {
			return err
		}
	}
	for i, f := range s.Faults {
		if err := s.validateFault(i, f); err != nil {
			return err
		}
	}
	// Same-kind windowed faults must not overlap in time on overlapping
	// node ranges: the schedule reads as a set, not a pipeline.
	for i, a := range s.Faults {
		if !a.windowed() {
			continue
		}
		for j := i + 1; j < len(s.Faults); j++ {
			b := s.Faults[j]
			if b.Kind != a.Kind || !b.windowed() {
				continue
			}
			if a.StartDay < b.EndDay && b.StartDay < a.EndDay && nodeRangesOverlap(a, b, s.Fleet.Nodes) {
				return fmt.Errorf("scenario: faults[%d] and faults[%d] are overlapping %q schedules on overlapping node ranges", i, j, a.Kind)
			}
		}
	}
	if err := s.Workload.validate(s.DurationDays); err != nil {
		return err
	}
	if err := s.Lifecycle.validate(); err != nil {
		return err
	}
	return s.Serving.validate(s.DurationDays, s.Lifecycle)
}

// validateFault checks one injection entry.
func (s Spec) validateFault(i int, f FaultSpec) error {
	name := func(field string) string { return fmt.Sprintf("faults[%d].%s", i, field) }
	if err := finite(name("start_day"), f.StartDay); err != nil {
		return err
	}
	if f.StartDay < 0 || f.StartDay >= s.DurationDays {
		return fmt.Errorf("scenario: %s %v outside [0, %v)", name("start_day"), f.StartDay, s.DurationDays)
	}
	if f.FirstNode < 0 || f.Nodes < 0 || f.FirstNode >= s.Fleet.Nodes {
		return fmt.Errorf("scenario: %s node range [%d,+%d) invalid for a %d-node fleet", name("nodes"), f.FirstNode, f.Nodes, s.Fleet.Nodes)
	}
	if f.windowed() {
		if err := finite(name("end_day"), f.EndDay); err != nil {
			return err
		}
		if f.EndDay <= f.StartDay {
			return fmt.Errorf("scenario: %s window has non-positive duration (%v..%v)", name("end_day"), f.StartDay, f.EndDay)
		}
		if f.EndDay > s.DurationDays {
			return fmt.Errorf("scenario: %s %v beyond the %v-day scenario", name("end_day"), f.EndDay, s.DurationDays)
		}
	}
	switch f.Kind {
	case FaultBurst:
		if f.UEs <= 0 {
			return fmt.Errorf("scenario: %s must be positive for a burst", name("ues"))
		}
		if f.Trains < 0 || f.CEPrefix < 0 {
			return fmt.Errorf("scenario: %s trains/ce_prefix must be non-negative", name("trains"))
		}
		if err := finite(name("spacing_seconds"), f.SpacingSeconds); err != nil {
			return err
		}
		if err := finite(name("train_gap_hours"), f.TrainGapHours); err != nil {
			return err
		}
		if f.SpacingSeconds < 0 || f.TrainGapHours < 0 {
			return fmt.Errorf("scenario: %s spacing/train gap must be non-negative durations", name("spacing_seconds"))
		}
	case FaultRamp:
		if err := finite(name("rate_mult"), f.RateMult); err != nil {
			return err
		}
		if f.RateMult <= 0 {
			return fmt.Errorf("scenario: %s must be positive, got %v", name("rate_mult"), f.RateMult)
		}
	case FaultBlackout:
		// Window checks above suffice.
	case FaultDelay:
		if err := finite(name("delay_minutes"), f.DelayMinutes); err != nil {
			return err
		}
		if f.DelayMinutes <= 0 {
			return fmt.Errorf("scenario: %s must be a positive duration, got %v", name("delay_minutes"), f.DelayMinutes)
		}
	case FaultDuplicate:
		if err := finite(name("fraction"), f.Fraction); err != nil {
			return err
		}
		if f.Fraction <= 0 || f.Fraction > 1 {
			return fmt.Errorf("scenario: %s must be in (0, 1], got %v", name("fraction"), f.Fraction)
		}
	default:
		return fmt.Errorf("scenario: faults[%d] has unknown kind %q", i, f.Kind)
	}
	return nil
}

// validate checks an overlay's multipliers.
func (o OverlaySpec) validate(name string) error {
	for _, m := range []struct {
		field string
		v     float64
	}{
		{"ce_rate_mult", o.CERateMult},
		{"ce_burst_mult", o.CEBurstMult},
		{"faulty_fraction_mult", o.FaultyFractionMult},
		{"storm_mult", o.StormMult},
		{"ue_mult", o.UEMult},
	} {
		if err := finite(name+"."+m.field, m.v); err != nil {
			return err
		}
		if m.v < 0 {
			return fmt.Errorf("scenario: %s.%s must be non-negative, got %v", name, m.field, m.v)
		}
	}
	return nil
}

func (w WorkloadSpec) validate(durationDays float64) error {
	if err := finite("workload.cost_node_hours", w.CostNodeHours); err != nil {
		return err
	}
	if err := finite("workload.mitigation_cost_node_minutes", w.MitigationCostNodeMinutes); err != nil {
		return err
	}
	if w.CostNodeHours < 0 || w.MitigationCostNodeMinutes < 0 {
		return fmt.Errorf("scenario: workload costs must be non-negative")
	}
	prev := -1.0
	for i, p := range w.Phases {
		if err := finite(fmt.Sprintf("workload.phases[%d].at_day", i), p.AtDay); err != nil {
			return err
		}
		if err := finite(fmt.Sprintf("workload.phases[%d].cost_node_hours", i), p.CostNodeHours); err != nil {
			return err
		}
		if p.AtDay <= prev || p.AtDay >= durationDays {
			return fmt.Errorf("scenario: workload.phases[%d].at_day %v overlaps the previous phase or leaves the scenario window", i, p.AtDay)
		}
		if p.CostNodeHours < 0 {
			return fmt.Errorf("scenario: workload.phases[%d].cost_node_hours must be non-negative", i)
		}
		prev = p.AtDay
	}
	return nil
}

func (l LifecycleSpec) validate() error {
	switch l.InitialPolicy {
	case "", "always", "never":
	default:
		return fmt.Errorf("scenario: lifecycle.initial_policy %q unknown (want always or never)", l.InitialPolicy)
	}
	if err := finite("lifecycle.drift_threshold", l.DriftThreshold); err != nil {
		return err
	}
	if l.DriftThreshold < 0 || l.DriftWindow < 0 || l.RetrainMin < 0 || l.EpochSteps < 0 ||
		l.ShadowDecisions < 0 || l.ExperienceCapacity < 0 {
		return fmt.Errorf("scenario: lifecycle knobs must be non-negative")
	}
	if l.ShadowUEs != nil && *l.ShadowUEs < 0 {
		return fmt.Errorf("scenario: lifecycle.shadow_ues must be non-negative")
	}
	g := l.Guard
	if g == nil {
		return nil
	}
	for _, m := range []struct {
		field string
		v     float64
	}{
		{"node_budget_node_hours", g.NodeBudgetNodeHours},
		{"node_window_hours", g.NodeWindowHours},
		{"fleet_window_hours", g.FleetWindowHours},
	} {
		if err := finite("lifecycle.guard."+m.field, m.v); err != nil {
			return err
		}
		if m.v < 0 {
			return fmt.Errorf("scenario: lifecycle.guard.%s must be a non-negative duration/amount, got %v", m.field, m.v)
		}
	}
	if g.ProbationToleranceNH != nil {
		if err := finite("lifecycle.guard.probation_tolerance_nh", *g.ProbationToleranceNH); err != nil {
			return err
		}
		if *g.ProbationToleranceNH < 0 {
			return fmt.Errorf("scenario: lifecycle.guard.probation_tolerance_nh must be non-negative")
		}
	}
	if g.FleetMitigations < 0 || g.PromotionsPerDay < 0 || g.ProbationDecisions < 0 {
		return fmt.Errorf("scenario: lifecycle.guard counts must be non-negative")
	}
	switch g.Approve {
	case "", "auto", "deny":
	default:
		return fmt.Errorf("scenario: lifecycle.guard.approve %q unknown (want auto or deny)", g.Approve)
	}
	return nil
}

// validate checks the serving section: fleet shape, knob sanity, guard
// compatibility, and a worker-fault schedule that reads as a legal state
// machine (kill/hang strike an up worker, rejoin revives a downed one).
func (sv *ServingSpec) validate(durationDays float64, l LifecycleSpec) error {
	if sv == nil {
		return nil
	}
	if sv.Workers <= 0 {
		return fmt.Errorf("scenario: serving.workers must be positive, got %d", sv.Workers)
	}
	if sv.JournalCapacity < 0 || sv.FailureThreshold < 0 {
		return fmt.Errorf("scenario: serving counts must be non-negative")
	}
	for _, m := range []struct {
		field string
		v     float64
	}{
		{"dedup_window_seconds", sv.DedupWindowSeconds},
		{"retry_backoff_seconds", sv.RetryBackoffSeconds},
	} {
		if err := finite("serving."+m.field, m.v); err != nil {
			return err
		}
		if m.v < 0 {
			return fmt.Errorf("scenario: serving.%s must be a non-negative duration, got %v", m.field, m.v)
		}
	}
	if g := l.Guard; g != nil {
		if g.PromotionsPerDay != 0 || g.Approve != "" || g.ProbationDecisions != 0 || g.ProbationToleranceNH != nil {
			return fmt.Errorf("scenario: serving lowers lifecycle.guard to per-worker budget enforcement; promotion/approval/probation knobs are not available with serving.workers set")
		}
	}
	up := make([]bool, sv.Workers)
	for i := range up {
		up[i] = true
	}
	prev := 0.0
	for i, f := range sv.Faults {
		name := func(field string) string { return fmt.Sprintf("serving.faults[%d].%s", i, field) }
		if err := finite(name("at_day"), f.AtDay); err != nil {
			return err
		}
		if f.AtDay <= 0 || f.AtDay >= durationDays {
			return fmt.Errorf("scenario: %s %v outside (0, %v)", name("at_day"), f.AtDay, durationDays)
		}
		if f.AtDay < prev {
			return fmt.Errorf("scenario: %s %v breaks the non-decreasing schedule order", name("at_day"), f.AtDay)
		}
		prev = f.AtDay
		if f.Worker < 0 || f.Worker >= sv.Workers {
			return fmt.Errorf("scenario: %s %d outside the %d-worker fleet", name("worker"), f.Worker, sv.Workers)
		}
		switch f.Kind {
		case WorkerKill, WorkerHang:
			if !up[f.Worker] {
				return fmt.Errorf("scenario: serving.faults[%d] %ss worker %d, which is already down", i, f.Kind, f.Worker)
			}
			up[f.Worker] = false
		case WorkerRejoin:
			if up[f.Worker] {
				return fmt.Errorf("scenario: serving.faults[%d] rejoins worker %d, which is not down", i, f.Worker)
			}
			up[f.Worker] = true
		default:
			return fmt.Errorf("scenario: serving.faults[%d] has unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// finite rejects NaN and ±Inf: a spec carrying one is malformed, never
// "approximately valid".
func finite(field string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("scenario: %s must be finite, got %v", field, v)
	}
	return nil
}

// validShares checks a per-manufacturer array: finite, non-negative, and
// not all zero.
func validShares(field string, a *[errlog.NumManufacturers]float64) error {
	if a == nil {
		return nil
	}
	total := 0.0
	for i, v := range a {
		if err := finite(fmt.Sprintf("%s[%d]", field, i), v); err != nil {
			return err
		}
		if v < 0 {
			return fmt.Errorf("scenario: %s[%d] must be non-negative, got %v", field, i, v)
		}
		total += v
	}
	if total <= 0 {
		return fmt.Errorf("scenario: %s sums to zero", field)
	}
	return nil
}

// nodeRangesOverlap reports whether two faults' node ranges intersect
// (Nodes 0 meaning the whole fleet).
func nodeRangesOverlap(a, b FaultSpec, fleet int) bool {
	aLo, aHi := nodeRange(a, fleet)
	bLo, bHi := nodeRange(b, fleet)
	return aLo < bHi && bLo < aHi
}

func nodeRange(f FaultSpec, fleet int) (lo, hi int) {
	if f.Nodes <= 0 {
		return 0, fleet
	}
	hi = f.FirstNode + f.Nodes
	if hi > fleet {
		hi = fleet
	}
	return f.FirstNode, hi
}

// day converts a day offset to a duration.
func day(d float64) time.Duration {
	return time.Duration(d * 24 * float64(time.Hour))
}
