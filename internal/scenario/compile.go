package scenario

import (
	"fmt"
	"sort"
	"time"

	uerl "repro"
	"repro/internal/errlog"
	"repro/internal/mathx"
	"repro/internal/telemetry"
)

// mn3Nodes is the full-scale fleet the telemetry defaults are calibrated
// for; scenario fleets scale the absolute counts proportionally.
const mn3Nodes = 3056

// injectionSalt decorrelates the fault-injection RNG tree from the
// telemetry generator, which consumes Spec.Seed directly.
const injectionSalt = 0x5ce7a510

// WorkerFault is one compiled serving-layer fault.
type WorkerFault struct {
	At     time.Time
	Worker int
	Kind   string
}

// Window is a closed time interval, used for the attack windows burst
// trains cover.
type Window struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.Start) && !t.After(w.End)
}

// Compiled is a scenario lowered to a concrete event stream: the final
// sorted telemetry the runner feeds the serving stack, plus everything
// the survival scorer needs to interpret it.
type Compiled struct {
	Spec  Spec
	Start time.Time
	End   time.Time
	// Events is the full stream, time-sorted, injections applied.
	Events []uerl.Event
	// GeneratedUEs and InjectedUEs split the uncorrected errors between
	// the generative fault model and the burst injections.
	GeneratedUEs int
	InjectedUEs  int
	// AttackWindows covers each injected burst train; UEs inside them
	// score the recall-under-attack survival metric.
	AttackWindows []Window
	// Dropped/Delayed/Duplicated count events the delivery faults
	// removed, shifted, or re-delivered.
	Dropped    int
	Delayed    int
	Duplicated int
	// WorkerFaults is the serving-layer fault schedule lowered to
	// absolute times, in schedule order (empty without a Serving
	// section); the runner applies each fault to the fleet transport
	// just before the first event at or after its time.
	WorkerFaults []WorkerFault
	// Cost is the workload model: the potential/realized UE cost at any
	// instant, following the spec's cost phases.
	Cost uerl.CostFunc
	// MitigationCostNodeMinutes and Restartable mirror the workload spec
	// with defaults applied.
	MitigationCostNodeMinutes float64
	Restartable               bool
	// Probe, when set, is invoked with the live controller after the
	// stack is built and before the stream is fed; the returned stop
	// function (if any) runs once the run finishes. Tests attach
	// concurrent serving probers here — the runner itself never calls
	// Recommend through it, so a probe cannot perturb the summary.
	Probe func(ctl *uerl.Controller) (stop func())
}

// Compile validates the spec and lowers it to a Compiled stream. The
// result is a pure function of the spec: same spec, byte-identical
// stream, on any GOMAXPROCS and under the race detector.
func Compile(spec Spec) (*Compiled, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	base := baseConfig(spec)
	start := base.Start
	c := &Compiled{
		Spec:                      spec,
		Start:                     start,
		End:                       start.Add(day(spec.DurationDays)),
		MitigationCostNodeMinutes: spec.Workload.MitigationCostNodeMinutes,
		Restartable:               true,
	}
	if c.MitigationCostNodeMinutes == 0 {
		c.MitigationCostNodeMinutes = 2
	}
	if spec.Workload.Restartable != nil {
		c.Restartable = *spec.Workload.Restartable
	}
	c.Cost = compileCost(spec, start)

	// Generate the drift phases back to back. Phase i gets seed Seed+i so
	// a shifted generator re-rolls its world rather than replaying the
	// pre-drift one with different rates; each phase's log is sorted and
	// confined to its window, so plain concatenation stays time-ordered.
	for _, cfg := range phaseConfigs(spec, base) {
		log := telemetry.Generate(cfg)
		for _, e := range log.Events {
			ev, ok := toServing(e)
			if !ok {
				continue
			}
			if ev.Type == uerl.UncorrectedError {
				c.GeneratedUEs++
			}
			c.Events = append(c.Events, ev)
		}
	}

	// Apply the injection schedule in spec order, each primitive drawing
	// from its own forked RNG so adding or reparameterizing one fault
	// never perturbs another's stream.
	injRoot := mathx.NewRNG(spec.Seed ^ injectionSalt)
	for _, f := range spec.Faults {
		rng := injRoot.Fork()
		switch f.Kind {
		case FaultBurst:
			c.injectBurst(f, rng)
		case FaultRamp:
			c.applyRamp(f)
		case FaultBlackout:
			c.applyBlackout(f)
		case FaultDelay:
			c.applyDelay(f)
		case FaultDuplicate:
			c.applyDuplicate(f, rng)
		}
	}

	// Delivery faults perturb timestamps and interleave injected events;
	// one stable sort restores time order while keeping the deterministic
	// construction order on ties.
	sort.SliceStable(c.Events, func(i, j int) bool {
		return c.Events[i].Time.Before(c.Events[j].Time)
	})

	// The serving-layer schedule is validated non-decreasing, so the
	// lowered form is already time-sorted.
	if spec.Serving != nil {
		for _, f := range spec.Serving.Faults {
			c.WorkerFaults = append(c.WorkerFaults, WorkerFault{
				At: start.Add(day(f.AtDay)), Worker: f.Worker, Kind: f.Kind,
			})
		}
	}
	return c, nil
}

// baseConfig builds the phase-0 generator configuration: the calibrated
// defaults scaled to the fleet, livened for a days-long run, with the
// spec's fleet shape and telemetry overlay applied.
func baseConfig(spec Spec) telemetry.Config {
	cfg := telemetry.Default().Scale(float64(spec.Fleet.Nodes) / mn3Nodes)
	cfg.Nodes = spec.Fleet.Nodes
	cfg.Seed = spec.Seed
	cfg.Duration = day(spec.DurationDays)
	// The full-scale defaults are calibrated for a two-year log; scenario
	// runs last days, so the per-DIMM rates are livened the same way the
	// serving demo always has.
	cfg.CEEntriesPerDay *= 4
	cfg.FaultyDIMMFraction *= 2
	if spec.Fleet.DIMMsPerNode > 0 {
		cfg.DIMMsPerNode = spec.Fleet.DIMMsPerNode
	}
	if spec.Fleet.ManufacturerShares != nil {
		cfg.ManufacturerShares = *spec.Fleet.ManufacturerShares
	}
	if spec.Fleet.FaultMultiplier != nil {
		cfg.FaultMultiplier = *spec.Fleet.FaultMultiplier
	}
	applyOverlay(&cfg, spec.Telemetry)
	return cfg
}

// phaseConfigs slices the scenario into per-drift-phase generator
// configurations. Phase 0 is the base; each drift phase restarts the
// generator at its boundary with the phase's overlay applied to the
// phase-0 rates (not cumulatively), seeded Seed+phase.
func phaseConfigs(spec Spec, base telemetry.Config) []telemetry.Config {
	bounds := []float64{0}
	for _, d := range spec.Drift {
		bounds = append(bounds, d.AtDay)
	}
	bounds = append(bounds, spec.DurationDays)

	out := make([]telemetry.Config, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		cfg := base
		cfg.Seed = spec.Seed + int64(i)
		cfg.Start = base.Start.Add(day(bounds[i]))
		cfg.Duration = day(bounds[i+1] - bounds[i])
		if i > 0 {
			d := spec.Drift[i-1]
			applyOverlay(&cfg, d.Overlay)
			if d.ManufacturerShares != nil {
				cfg.ManufacturerShares = *d.ManufacturerShares
			}
			if d.FaultMultiplier != nil {
				cfg.FaultMultiplier = *d.FaultMultiplier
			}
		}
		// UE counts are absolute per generator run: prorate to the phase
		// length so drift phases don't each re-emit the full scenario's
		// UE allotment.
		frac := (bounds[i+1] - bounds[i]) / spec.DurationDays
		cfg.SignaledUEs = max(1, int(float64(cfg.SignaledUEs)*frac+0.5))
		cfg.SuddenUEs = max(1, int(float64(cfg.SuddenUEs)*frac+0.5))
		cfg.RetiredDIMMs = int(float64(cfg.RetiredDIMMs)*frac + 0.5)
		out = append(out, cfg)
	}
	return out
}

// applyOverlay multiplies cfg's rates by the overlay (zero multiplier =
// unchanged).
func applyOverlay(cfg *telemetry.Config, o OverlaySpec) {
	cfg.CEEntriesPerDay *= mult(o.CERateMult)
	cfg.MeanCEBurst *= mult(o.CEBurstMult)
	cfg.FaultyDIMMFraction *= mult(o.FaultyFractionMult)
	cfg.StormsPerFaultyDIMM *= mult(o.StormMult)
	if o.UEMult != 0 {
		cfg.SignaledUEs = max(1, int(float64(cfg.SignaledUEs)*o.UEMult+0.5))
		cfg.SuddenUEs = max(1, int(float64(cfg.SuddenUEs)*o.UEMult+0.5))
	}
}

// mult treats a zero overlay multiplier as 1 (field omitted).
func mult(m float64) float64 {
	if m == 0 {
		return 1
	}
	return m
}

// toServing converts an internal log record to a serving event.
// Retirements are administrative records, not node telemetry.
func toServing(e errlog.Event) (uerl.Event, bool) {
	var typ uerl.EventType
	switch e.Type {
	case errlog.CE:
		typ = uerl.CorrectedError
	case errlog.UEWarning:
		typ = uerl.UEWarning
	case errlog.Boot:
		typ = uerl.NodeBoot
	case errlog.UE:
		typ = uerl.UncorrectedError
	default:
		return uerl.Event{}, false
	}
	return uerl.Event{
		Time: e.Time, Node: e.Node, DIMM: e.DIMM, Type: typ, Count: e.Count,
		Rank: e.Rank, Bank: e.Bank, Row: e.Row, Col: e.Col,
	}, true
}

// injectBurst appends the RowHammer-style burst trains: per train an
// optional CE-storm prefix (attack shaping) followed by UEs striking
// round-robin across the node range, and records the attack window.
func (c *Compiled) injectBurst(f FaultSpec, rng *mathx.RNG) {
	lo, hi := nodeRange(f, c.Spec.Fleet.Nodes)
	span := hi - lo
	trains := f.Trains
	if trains <= 0 {
		trains = 1
	}
	spacing := time.Duration(f.SpacingSeconds * float64(time.Second))
	if spacing <= 0 {
		spacing = 15 * time.Second
	}
	gap := time.Duration(f.TrainGapHours * float64(time.Hour))
	if gap <= 0 {
		gap = 6 * time.Hour
	}
	for t := 0; t < trains; t++ {
		at := c.Start.Add(day(f.StartDay)).Add(time.Duration(t) * gap)
		if at.After(c.End) {
			break
		}
		// The attack window opens at the shaping prefix: vetoes during
		// the prefix storm are part of the attack's blast radius.
		winStart := at.Add(-time.Duration(f.CEPrefix) * time.Second)
		for i := f.CEPrefix; i > 0; i-- {
			c.Events = append(c.Events, uerl.Event{
				Time: at.Add(-time.Duration(i) * time.Second),
				Node: lo + (f.CEPrefix-i)%span, DIMM: -1,
				Type: uerl.CorrectedError, Count: 1 + rng.Intn(32),
				Rank: -1, Bank: -1, Row: -1, Col: -1,
			})
		}
		last := at
		for i := 0; i < f.UEs; i++ {
			last = at.Add(time.Duration(i) * spacing)
			c.Events = append(c.Events, uerl.Event{
				Time: last, Node: lo + i%span, DIMM: -1,
				Type: uerl.UncorrectedError, Count: 1,
				Rank: -1, Bank: -1, Row: -1, Col: -1,
			})
			c.InjectedUEs++
		}
		c.AttackWindows = append(c.AttackWindows, Window{Start: winStart, End: last})
	}
}

// applyRamp scales CE counts in the window linearly from 1× at StartDay
// to RateMult× at EndDay.
func (c *Compiled) applyRamp(f FaultSpec) {
	lo, hi := nodeRange(f, c.Spec.Fleet.Nodes)
	start := c.Start.Add(day(f.StartDay))
	end := c.Start.Add(day(f.EndDay))
	width := end.Sub(start)
	for i := range c.Events {
		e := &c.Events[i]
		if e.Type != uerl.CorrectedError || e.Node < lo || e.Node >= hi ||
			e.Time.Before(start) || !e.Time.Before(end) {
			continue
		}
		frac := float64(e.Time.Sub(start)) / float64(width)
		m := 1 + (f.RateMult-1)*frac
		count := e.Count
		if count <= 0 {
			count = 1
		}
		e.Count = int(float64(count)*m + 0.5)
		if e.Count < 1 {
			e.Count = 1
		}
	}
}

// applyBlackout drops every event from the node range in the window.
func (c *Compiled) applyBlackout(f FaultSpec) {
	lo, hi := nodeRange(f, c.Spec.Fleet.Nodes)
	start := c.Start.Add(day(f.StartDay))
	end := c.Start.Add(day(f.EndDay))
	kept := c.Events[:0]
	for _, e := range c.Events {
		if e.Node >= lo && e.Node < hi && !e.Time.Before(start) && e.Time.Before(end) {
			c.Dropped++
			continue
		}
		kept = append(kept, e)
	}
	c.Events = kept
}

// applyDelay shifts delivery of the node range's events in the window by
// DelayMinutes.
func (c *Compiled) applyDelay(f FaultSpec) {
	lo, hi := nodeRange(f, c.Spec.Fleet.Nodes)
	start := c.Start.Add(day(f.StartDay))
	end := c.Start.Add(day(f.EndDay))
	shift := time.Duration(f.DelayMinutes * float64(time.Minute))
	for i := range c.Events {
		e := &c.Events[i]
		if e.Node >= lo && e.Node < hi && !e.Time.Before(start) && e.Time.Before(end) {
			e.Time = e.Time.Add(shift)
			c.Delayed++
		}
	}
}

// applyDuplicate re-delivers a deterministic fraction of the node
// range's events in the window one second late.
func (c *Compiled) applyDuplicate(f FaultSpec, rng *mathx.RNG) {
	lo, hi := nodeRange(f, c.Spec.Fleet.Nodes)
	start := c.Start.Add(day(f.StartDay))
	end := c.Start.Add(day(f.EndDay))
	n := len(c.Events) // iterate the pre-duplication stream only
	for i := 0; i < n; i++ {
		e := c.Events[i]
		if e.Node < lo || e.Node >= hi || e.Time.Before(start) || !e.Time.Before(end) {
			continue
		}
		if !rng.Bool(f.Fraction) {
			continue
		}
		dup := e
		dup.Time = dup.Time.Add(time.Second)
		c.Events = append(c.Events, dup)
		c.Duplicated++
	}
}

// compileCost builds the workload cost model from the spec's phases.
func compileCost(spec Spec, start time.Time) uerl.CostFunc {
	base := spec.Workload.CostNodeHours
	if base == 0 {
		base = 100
	}
	if len(spec.Workload.Phases) == 0 {
		return uerl.ConstantCost(base)
	}
	type step struct {
		at   time.Time
		cost float64
	}
	steps := make([]step, 0, len(spec.Workload.Phases))
	for _, p := range spec.Workload.Phases {
		steps = append(steps, step{start.Add(day(p.AtDay)), p.CostNodeHours})
	}
	return func(_ int, at time.Time) float64 {
		cost := base
		for _, s := range steps {
			if at.Before(s.at) {
				break
			}
			cost = s.cost
		}
		return cost
	}
}

// InAttack reports whether t falls inside any attack window.
func (c *Compiled) InAttack(t time.Time) bool {
	for _, w := range c.AttackWindows {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// String summarizes the compiled stream.
func (c *Compiled) String() string {
	return fmt.Sprintf("scenario %q: %d nodes, %.1f days, %d events (%d generated + %d injected UEs, %d dropped, %d delayed, %d duplicated)",
		c.Spec.Name, c.Spec.Fleet.Nodes, c.Spec.DurationDays, len(c.Events),
		c.GeneratedUEs, c.InjectedUEs, c.Dropped, c.Delayed, c.Duplicated)
}
