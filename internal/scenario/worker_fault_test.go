package scenario

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// servingSpec returns a runnable fleet-mode spec with a kill/rejoin arc
// overlapping a burst, small enough to iterate on in tests.
func servingSpec() Spec {
	s := validSpec()
	s.Name = "fleet-probe"
	s.DurationDays = 8
	s.Faults = []FaultSpec{
		{Kind: FaultBurst, StartDay: 4, UEs: 12, CEPrefix: 60},
		{Kind: FaultDuplicate, StartDay: 5, EndDay: 6, Fraction: 0.5},
	}
	s.Serving = &ServingSpec{
		Workers:            3,
		JournalCapacity:    128,
		DedupWindowSeconds: 5,
		Faults: []WorkerFaultSpec{
			{Worker: 1, Kind: WorkerKill, AtDay: 3.9},
			{Worker: 1, Kind: WorkerRejoin, AtDay: 6},
		},
	}
	return s
}

func TestCompileWorkerFaultSchedule(t *testing.T) {
	s := servingSpec()
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.WorkerFaults) != 2 {
		t.Fatalf("compiled %d worker faults, want 2", len(c.WorkerFaults))
	}
	kill, rejoin := c.WorkerFaults[0], c.WorkerFaults[1]
	if kill.Kind != WorkerKill || kill.Worker != 1 {
		t.Fatalf("first fault = %+v, want kill of worker 1", kill)
	}
	if want := c.Start.Add(time.Duration(3.9 * 24 * float64(time.Hour))); !kill.At.Equal(want) {
		t.Fatalf("kill lowered to %v, want %v", kill.At, want)
	}
	if !rejoin.At.After(kill.At) {
		t.Fatal("schedule lost its time order in lowering")
	}
	// Without a serving section the schedule is empty.
	s.Serving = nil
	if c2, err := Compile(s); err != nil || len(c2.WorkerFaults) != 0 {
		t.Fatalf("single-process compile: %v, %d worker faults", err, len(c2.WorkerFaults))
	}
}

// TestScenarioFleetArc runs the kill/rejoin scenario end to end and
// checks the summary tells the whole story: the failover and rejoin
// happened, journal replay rebuilt the moved nodes, duplicated
// deliveries were absorbed, any degraded decision stayed conservative,
// and the fleet ended settled (no orphans, every worker live).
func TestScenarioFleetArc(t *testing.T) {
	sum, err := Run(servingSpec())
	if err != nil {
		t.Fatal(err)
	}
	fs := sum.Fleet
	if fs == nil {
		t.Fatal("fleet-mode run produced no fleet summary")
	}
	if fs.Workers != 3 {
		t.Fatalf("fleet width %d, want 3", fs.Workers)
	}
	if fs.Failovers < 1 || fs.Rejoins < 1 {
		t.Fatalf("fault arc not exercised: failovers=%d rejoins=%d", fs.Failovers, fs.Rejoins)
	}
	if fs.ReplayedEvents == 0 || fs.ReplayedNodes == 0 {
		t.Fatalf("failover did not replay journal state: %+v", fs)
	}
	if fs.JournalDeduped == 0 {
		t.Fatal("duplicated deliveries were not deduplicated")
	}
	if fs.OrphanNodes != 0 {
		t.Fatalf("%d nodes left orphaned after Reconcile", fs.OrphanNodes)
	}
	if sum.Survival.ContractViolations != 0 {
		t.Fatalf("%d degraded/vetoed decisions broke the conservative contract", sum.Survival.ContractViolations)
	}
	if len(fs.WorkerStates) != 3 {
		t.Fatalf("%d worker state lines, want 3", len(fs.WorkerStates))
	}
	for _, w := range fs.WorkerStates {
		if w.State != "live" {
			t.Fatalf("worker %d ended %q, want live", w.ID, w.State)
		}
	}
}

// TestScenarioFleetDeterminism proves fleet-mode summaries are
// byte-identical across repeated runs and GOMAXPROCS settings — the
// property the worker-fault goldens stand on.
func TestScenarioFleetDeterminism(t *testing.T) {
	spec := servingSpec()
	run := func() []byte {
		sum, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := EncodeSummary(sum)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	first := run()
	if again := run(); !bytes.Equal(first, again) {
		t.Fatal("fleet summary differs across identical runs")
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	if single := run(); !bytes.Equal(first, single) {
		t.Fatal("fleet summary differs under GOMAXPROCS=1")
	}
}
