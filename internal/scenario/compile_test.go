package scenario

import (
	"testing"
	"time"

	uerl "repro"
)

// compileSmall compiles a small fixed-shape scenario with the given
// faults.
func compileSmall(t *testing.T, faults ...FaultSpec) *Compiled {
	t.Helper()
	s := validSpec()
	s.Faults = faults
	c, err := Compile(s)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestCompileSorted(t *testing.T) {
	c := compileSmall(t,
		FaultSpec{Kind: FaultBurst, StartDay: 3, UEs: 8, Trains: 2, CEPrefix: 16},
		FaultSpec{Kind: FaultDelay, StartDay: 1, EndDay: 2, DelayMinutes: 45},
		FaultSpec{Kind: FaultDuplicate, StartDay: 4, EndDay: 5, Fraction: 0.5},
	)
	for i := 1; i < len(c.Events); i++ {
		if c.Events[i].Time.Before(c.Events[i-1].Time) {
			t.Fatalf("event %d out of order after injection", i)
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	mk := func() *Compiled {
		return compileSmall(t,
			FaultSpec{Kind: FaultBurst, StartDay: 3, UEs: 8, Trains: 2, CEPrefix: 16},
			FaultSpec{Kind: FaultRamp, StartDay: 1, EndDay: 4, RateMult: 5},
			FaultSpec{Kind: FaultDuplicate, StartDay: 4, EndDay: 6, Fraction: 0.3},
		)
	}
	a, b := mk(), mk()
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event count differs: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs across identical compiles", i)
		}
	}
	if a.Duplicated != b.Duplicated || a.InjectedUEs != b.InjectedUEs {
		t.Fatal("injection counters differ across identical compiles")
	}
}

func TestBurstInjection(t *testing.T) {
	c := compileSmall(t,
		FaultSpec{Kind: FaultBurst, StartDay: 5, FirstNode: 2, Nodes: 4,
			UEs: 6, Trains: 2, TrainGapHours: 12, CEPrefix: 10},
	)
	if c.InjectedUEs != 12 {
		t.Fatalf("injected %d UEs, want 12", c.InjectedUEs)
	}
	if len(c.AttackWindows) != 2 {
		t.Fatalf("got %d attack windows, want 2", len(c.AttackWindows))
	}
	trainStart := c.Start.Add(day(5))
	if got := c.AttackWindows[0].Start; !got.Equal(trainStart.Add(-10 * time.Second)) {
		t.Fatalf("attack window starts %v, want the CE prefix start", got)
	}
	// All injected UEs land inside the node range and inside a window.
	for _, e := range c.Events {
		if e.Type == uerl.UncorrectedError && e.DIMM == -1 {
			if e.Node < 2 || e.Node >= 6 {
				t.Fatalf("injected UE on node %d outside range [2,6)", e.Node)
			}
			if !c.InAttack(e.Time) {
				t.Fatalf("injected UE at %v outside every attack window", e.Time)
			}
		}
	}
}

func TestBlackoutDropsRange(t *testing.T) {
	s := validSpec()
	base, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	c := compileSmall(t, FaultSpec{Kind: FaultBlackout, StartDay: 2, EndDay: 8, FirstNode: 0, Nodes: 8})
	if c.Dropped == 0 {
		t.Fatal("blackout dropped nothing")
	}
	if len(c.Events)+c.Dropped != len(base.Events) {
		t.Fatalf("dropped %d but event count went %d -> %d", c.Dropped, len(base.Events), len(c.Events))
	}
	start, end := c.Start.Add(day(2)), c.Start.Add(day(8))
	for _, e := range c.Events {
		if e.Node < 8 && !e.Time.Before(start) && e.Time.Before(end) {
			t.Fatalf("node %d event at %v survived the blackout", e.Node, e.Time)
		}
	}
}

func TestRampScalesCounts(t *testing.T) {
	s := validSpec()
	base, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	c := compileSmall(t, FaultSpec{Kind: FaultRamp, StartDay: 0, EndDay: 10, RateMult: 10})
	baseTotal, rampTotal := 0, 0
	for _, e := range base.Events {
		if e.Type == uerl.CorrectedError {
			baseTotal += e.Count
		}
	}
	for _, e := range c.Events {
		if e.Type == uerl.CorrectedError {
			rampTotal += e.Count
		}
	}
	if rampTotal <= baseTotal {
		t.Fatalf("ramp did not raise CE counts: %d vs %d", rampTotal, baseTotal)
	}
}

func TestDelayShiftsWithinWindow(t *testing.T) {
	c := compileSmall(t, FaultSpec{Kind: FaultDelay, StartDay: 1, EndDay: 3, DelayMinutes: 30})
	if c.Delayed == 0 {
		t.Fatal("delay shifted nothing")
	}
	// The stream stays sorted even with shifted timestamps.
	for i := 1; i < len(c.Events); i++ {
		if c.Events[i].Time.Before(c.Events[i-1].Time) {
			t.Fatalf("event %d out of order after delay", i)
		}
	}
}

func TestDuplicateRedelivers(t *testing.T) {
	c := compileSmall(t, FaultSpec{Kind: FaultDuplicate, StartDay: 0, EndDay: 10, Fraction: 1})
	if c.Duplicated == 0 {
		t.Fatal("duplicate re-delivered nothing")
	}
	s := validSpec()
	base, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Events) != len(base.Events)+c.Duplicated {
		t.Fatalf("duplicated %d but event count went %d -> %d", c.Duplicated, len(base.Events), len(c.Events))
	}
}

func TestCostPhases(t *testing.T) {
	s := validSpec()
	s.Workload = WorkloadSpec{
		CostNodeHours: 50,
		Phases:        []CostPhase{{AtDay: 3, CostNodeHours: 200}, {AtDay: 7, CostNodeHours: 25}},
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		at   float64
		want float64
	}{{0, 50}, {2.9, 50}, {3, 200}, {6.5, 200}, {7, 25}, {9.9, 25}} {
		if got := c.Cost(0, c.Start.Add(day(tc.at))); got != tc.want {
			t.Fatalf("cost at day %v = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestDriftPhasesChangeStream(t *testing.T) {
	plain := validSpec()
	a, err := Compile(plain)
	if err != nil {
		t.Fatal(err)
	}
	drifted := validSpec()
	drifted.Drift = []DriftPhase{{AtDay: 5, Overlay: OverlaySpec{CERateMult: 8, CEBurstMult: 4}}}
	b, err := Compile(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) <= len(a.Events) {
		t.Fatalf("drift phase at 8x CE rate did not grow the stream: %d vs %d", len(b.Events), len(a.Events))
	}
}
