package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	uerl "repro"
)

// TestAdversarialBurstGracefulDegradation is the graceful-degradation
// e2e (run it with -race): a RowHammer-style shaped burst train trips
// the fleet mitigation budget while concurrent goroutines hammer
// Recommend the whole time. Serving must never block — every probe call
// returns, vetoed decisions carry ActionNone — and once the sliding
// window drains after the attack, the budget must recover exactly once
// in the audit log.
func TestAdversarialBurstGracefulDegradation(t *testing.T) {
	ues := 0
	spec := Spec{
		Name:         "adversarial-e2e",
		Seed:         9,
		DurationDays: 10,
		Fleet:        FleetSpec{Nodes: 16},
		Faults: []FaultSpec{
			// One shaped train: a 300-event CE-storm prefix forces Always
			// past the fleet budget inside the window; the UEs land while
			// mitigations are vetoed.
			{Kind: FaultBurst, StartDay: 5, UEs: 8, CEPrefix: 300},
		},
		Lifecycle: LifecycleSpec{
			// The budget dynamic is under test, not the lifecycle: park
			// retraining so the incumbent serves throughout.
			RetrainMin: 1 << 20,
			ShadowUEs:  &ues,
			// Baseline fleet traffic is ~a few mitigations per hour, far
			// under the limit, so the trip and the recovery are both
			// attributable to the burst alone — exactly one of each.
			Guard: &GuardSpec{FleetMitigations: 32, FleetWindowHours: 1},
		},
	}
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}

	var calls, probeVetoes atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	c.Probe = func(ctl *uerl.Controller) func() {
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				// Probe before checking stop so every worker lands at
				// least one call even if the stream drains first.
				for {
					d := ctl.Recommend(node, c.End, 100)
					if d.Vetoed {
						probeVetoes.Add(1)
						if d.Action != uerl.ActionNone {
							t.Errorf("vetoed probe decision served %v, want ActionNone", d.Action)
						}
					}
					calls.Add(1)
					select {
					case <-stop:
						return
					default:
					}
				}
			}(w)
		}
		return func() { close(stop); wg.Wait() }
	}

	sum, err := RunCompiled(c)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("probers completed zero Recommend calls — serving blocked")
	}
	if sum.Survival.VetoedDecisions == 0 || sum.Survival.VetoedDuringAttack == 0 {
		t.Fatalf("burst tripped no vetoes (total %d, during attack %d)",
			sum.Survival.VetoedDecisions, sum.Survival.VetoedDuringAttack)
	}
	gs := sum.Learner.Guard
	if gs == nil {
		t.Fatal("guarded run reported no guard stats")
	}
	if got := sum.Lifecycle.EventCounts[string(uerl.LifecycleBudgetTrip)]; got != 1 {
		t.Errorf("audit log has %d budget-trip events, want exactly 1", got)
	}
	if got := sum.Lifecycle.EventCounts[string(uerl.LifecycleBudgetRecover)]; got != 1 {
		t.Errorf("audit log has %d budget-recover events, want exactly 1", got)
	}
	if gs.BudgetRecoveries != 1 {
		t.Errorf("guard counted %d budget recoveries, want exactly 1", gs.BudgetRecoveries)
	}
	if n := gs.VetoesByReason["fleet-mitigation-budget"]; n != gs.SuppressedMitigations {
		t.Errorf("vetoes by reason %v do not attribute all %d suppressions to the fleet budget",
			gs.VetoesByReason, gs.SuppressedMitigations)
	}
	if gs.SuppressedMitigations != sum.Survival.VetoedDecisions {
		t.Errorf("guard suppressed %d but the served stream carried %d vetoes",
			gs.SuppressedMitigations, sum.Survival.VetoedDecisions)
	}
}

// TestRowhammerScenarioRollsBackAlongLineage pins the named adversarial
// scenario's survival arc independent of golden bytes: the quiet-window
// promotion regresses under the UE train and rolls back along the
// lineage chain, and the later shaped trains trip the fleet budget with
// the restored incumbent serving.
func TestRowhammerScenarioRollsBackAlongLineage(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(specDir, "rowhammer.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := sum.Lifecycle.EventCounts
	if counts[string(uerl.LifecyclePromote)] == 0 {
		t.Fatal("no promotion: the quiet-window candidate never won shadow")
	}
	if counts[string(uerl.LifecycleRollback)] == 0 {
		t.Fatal("no rollback: the regressive promotion survived the UE train")
	}
	if counts[string(uerl.LifecycleBudgetTrip)] == 0 || counts[string(uerl.LifecycleBudgetRecover)] == 0 {
		t.Fatalf("fleet budget never cycled (trips %d, recovers %d)",
			counts[string(uerl.LifecycleBudgetTrip)], counts[string(uerl.LifecycleBudgetRecover)])
	}
	gs := sum.Learner.Guard
	if gs == nil || gs.Rollbacks == 0 {
		t.Fatal("guard stats carry no rollback")
	}
	if gs.VetoesByReason["fleet-mitigation-budget"] == 0 {
		t.Fatal("no fleet-budget vetoes during the burst trains")
	}
	// Rollback landed serving back on the initial incumbent, and the
	// lineage chain the summary reports ends there.
	if !strings.HasPrefix(sum.Lifecycle.ServingVersion, "always.") {
		t.Fatalf("serving ended on %s, want the rolled-back Always incumbent", sum.Lifecycle.ServingVersion)
	}
	if last := sum.Lifecycle.Lineage[len(sum.Lifecycle.Lineage)-1]; last != sum.InitialVersion {
		t.Fatalf("lineage ends at %s, want the initial version %s", last, sum.InitialVersion)
	}
	if sum.Survival.VetoedDuringAttack == 0 {
		t.Fatal("no vetoes inside the attack windows")
	}
}
