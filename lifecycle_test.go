package uerl

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// driftingTelemetry builds a deterministic telemetry stream whose CE rate
// steps up sharply mid-stream (a fleet-wide fault-mode change), with a
// few realized UEs sprinkled into the degraded phase.
func driftingTelemetry(nodes, phase1, phase2 int) []Event {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var evs []Event
	for i := 0; i < phase1+phase2; i++ {
		node := i % nodes
		at := base.Add(time.Duration(i) * 30 * time.Second)
		count := 1 + i%3
		if i >= phase1 {
			count = 40 + i%5
			if (i-phase1)%173 == 101 {
				evs = append(evs, Event{Time: at, Node: node, DIMM: node, Type: UncorrectedError,
					Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1})
				continue
			}
		}
		evs = append(evs, Event{Time: at, Node: node, DIMM: node, Type: CorrectedError,
			Count: count, Rank: 0, Bank: 1, Row: i % 7, Col: 3})
	}
	return evs
}

// newTestLearner builds a learner with CI-scale lifecycle parameters.
// The incumbent is the Never baseline — the online loop's job is to
// learn, from realized UE losses in live traffic, that the degraded
// fleet warrants mitigation. The shadow gate requires one realized UE,
// so promotions are judged on outcome evidence, not mitigation spend.
func newTestLearner() *OnlineLearner {
	ctl := NewController(NeverPolicy(), WithShards(4))
	return NewOnlineLearner(ctl,
		WithLearnerSeed(5),
		WithCostSource(ConstantCost(100)),
		WithDriftDetection(8, 128),
		WithRetraining(128, 32),
		WithShadowGate(64, 1),
		WithExperienceCapacity(4096),
	)
}

// TestLifecycleEndToEnd streams drifting telemetry through the full
// continual-learning loop: drift must trigger a retrain, shadow
// evaluation must gate the candidate, and a promotion must hot-swap the
// serving policy with lineage intact — while concurrent Recommend
// traffic proceeds unblocked (run under -race in CI).
func TestLifecycleEndToEnd(t *testing.T) {
	learner := newTestLearner()
	ctl := learner.Controller()
	initialVersion := ctl.Policy().Version()
	stream := driftingTelemetry(8, 600, 800)

	// Serving traffic hammers the controller throughout the lifecycle.
	// Every one of these calls must complete with a coherent decision —
	// a hot swap may never drop or block a Recommend.
	const queriesPerWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			at := stream[0].Time
			for i := 0; i < queriesPerWorker; i++ {
				d := ctl.Recommend((w+i)%8, at.Add(time.Duration(i)*time.Second), 50)
				if d.ModelVersion == "" || d.Policy == "" {
					t.Error("decision with empty identity during lifecycle")
					return
				}
			}
		}(w)
	}

	learner.ProcessBatch(stream)
	wg.Wait()

	stats := learner.Stats()
	if stats.Generation < 1 {
		t.Fatalf("no promotion happened: %+v\nevents: %+v", stats, learner.Events())
	}
	if stats.UEs == 0 {
		t.Fatal("stream carried no UEs")
	}
	if stats.Transitions == 0 || stats.Epochs == 0 {
		t.Fatalf("no learning happened: %+v", stats)
	}

	// The lifecycle must have recorded drift → retrain → promote, in
	// that causal order, and the served model must have changed.
	events := learner.Events()
	firstOf := func(kind LifecycleEventKind) int {
		for i, ev := range events {
			if ev.Kind == kind {
				return i
			}
		}
		return -1
	}
	di, ri, pi := firstOf(LifecycleDrift), firstOf(LifecycleRetrain), firstOf(LifecyclePromote)
	if di < 0 || ri < 0 || pi < 0 {
		t.Fatalf("missing lifecycle stages (drift=%d retrain=%d promote=%d): %+v", di, ri, pi, events)
	}
	if !(di <= ri && ri < pi) {
		t.Fatalf("lifecycle out of order (drift=%d retrain=%d promote=%d)", di, ri, pi)
	}

	serving := ctl.Policy()
	if serving.Version() == initialVersion {
		t.Fatal("serving policy unchanged after promotion")
	}
	if serving.Kind() != PolicyRL {
		t.Fatalf("promoted policy kind = %s, want rl", serving.Kind())
	}

	// Lineage: every promotion's parent is the version it replaced, and
	// the currently served model heads the chain.
	parent := initialVersion
	var lastPromoted string
	for _, ev := range events {
		if ev.Kind != LifecyclePromote {
			continue
		}
		if ev.Parent != parent {
			t.Fatalf("promotion %q chains to %q, want %q", ev.ModelVersion, ev.Parent, parent)
		}
		parent = ev.ModelVersion
		lastPromoted = ev.ModelVersion
	}
	if lastPromoted != serving.Version() {
		t.Fatalf("served version %q is not the last promoted %q", serving.Version(), lastPromoted)
	}
	if ModelParent(serving) == "" {
		t.Fatal("served model carries no lineage")
	}

	// Tracker state survived every swap: all 8 nodes still tracked.
	if n := ctl.NodeCount(); n != 8 {
		t.Fatalf("tracked %d nodes after lifecycle, want 8", n)
	}
}

// TestLifecycleDeterministic: a fixed seed and event stream reproduce the
// lifecycle bit-for-bit — same audit log, same content-addressed model
// versions, same final stats.
func TestLifecycleDeterministic(t *testing.T) {
	run := func() ([]LifecycleEvent, LearnerStats) {
		learner := newTestLearner()
		learner.ProcessBatch(driftingTelemetry(8, 600, 800))
		return learner.Events(), learner.Stats()
	}
	ev1, st1 := run()
	ev2, st2 := run()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("lifecycle events differ across identical runs:\n%+v\nvs\n%+v", ev1, ev2)
	}
	if st1 != st2 {
		t.Fatalf("lifecycle stats differ across identical runs:\n%+v\nvs\n%+v", st1, st2)
	}
	if len(ev1) == 0 {
		t.Fatal("deterministic run produced no lifecycle events")
	}
}

// TestLifecycleQuietStreamNoChurn: a stationary stream must not drift,
// retrain, or swap anything.
func TestLifecycleQuietStreamNoChurn(t *testing.T) {
	learner := newTestLearner()
	ctl := learner.Controller()
	before := ctl.Policy().Version()
	learner.ProcessBatch(driftingTelemetry(8, 1200, 0))
	if events := learner.Events(); len(events) != 0 {
		t.Fatalf("stationary stream produced lifecycle events: %+v", events)
	}
	if got := ctl.Policy().Version(); got != before {
		t.Fatalf("stationary stream swapped the policy: %q -> %q", before, got)
	}
	if st := learner.Stats(); st.Generation != 0 || st.ShadowActive {
		t.Fatalf("stationary stream left lifecycle state: %+v", st)
	}
}
