package uerl

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/evalx"
	"repro/internal/guard"
)

// ApprovalVerdict is an approval hook's answer to a promotion request.
type ApprovalVerdict int

const (
	// ApprovalApproved lets the promotion proceed.
	ApprovalApproved ApprovalVerdict = iota
	// ApprovalDenied blocks the promotion; the candidate is discarded.
	ApprovalDenied
)

// PromotionRequest is everything an approval hook sees about a promotion
// the lifecycle wants to execute.
type PromotionRequest struct {
	// Candidate is the content-addressed version of the model to promote.
	Candidate string `json:"candidate"`
	// Incumbent is the version currently serving (the candidate's lineage
	// parent).
	Incumbent string `json:"incumbent"`
	// Generation is the model generation before the promotion.
	Generation int `json:"generation"`
	// Time is the telemetry time of the promotion decision.
	Time time.Time `json:"time"`
	// ShadowAdvantage is the shadow-eval cost advantage (incumbent −
	// candidate, node-hours) the candidate won with.
	ShadowAdvantage float64 `json:"shadow_advantage"`
	// ShadowDecisions and ShadowUEs size the evidence behind it.
	ShadowDecisions int `json:"shadow_decisions"`
	ShadowUEs       int `json:"shadow_ues"`
}

// ApprovalHook gates every promotion the lifecycle attempts. Review is
// called once per shadow-winning candidate, after the promotion budget
// check; it may block (e.g. waiting for a human), during which serving
// traffic proceeds untouched — only the learning loop waits. The
// returned reason is recorded in the audit log either way.
type ApprovalHook interface {
	Review(req PromotionRequest) (ApprovalVerdict, string)
}

// approvalFunc adapts a function to ApprovalHook.
type approvalFunc func(req PromotionRequest) (ApprovalVerdict, string)

func (f approvalFunc) Review(req PromotionRequest) (ApprovalVerdict, string) { return f(req) }

// AutoApprove approves every promotion (the default hook): promotions
// are gated by the shadow eval and the promotion budget alone.
func AutoApprove() ApprovalHook {
	return approvalFunc(func(PromotionRequest) (ApprovalVerdict, string) {
		return ApprovalApproved, "auto-approved"
	})
}

// DenyPromotions denies every promotion — a promotion freeze (e.g.
// change-window lockdown). The reason lands in every audit event.
func DenyPromotions(reason string) ApprovalHook {
	if reason == "" {
		reason = "promotions frozen"
	}
	return approvalFunc(func(PromotionRequest) (ApprovalVerdict, string) {
		return ApprovalDenied, reason
	})
}

// ApprovalCallback runs f asynchronously for each promotion request and
// waits up to timeout for its answer; a timeout or error is a deny (the
// safe default for an unreachable approver). f runs on its own
// goroutine, so it may do I/O (page an operator, post to a change
// system); if it answers after the timeout the late answer is discarded.
func ApprovalCallback(timeout time.Duration, f func(req PromotionRequest) (bool, error)) ApprovalHook {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return approvalFunc(func(req PromotionRequest) (ApprovalVerdict, string) {
		type answer struct {
			ok  bool
			err error
		}
		ch := make(chan answer, 1)
		go func() {
			ok, err := f(req)
			ch <- answer{ok, err}
		}()
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case a := <-ch:
			if a.err != nil {
				return ApprovalDenied, "approval callback failed: " + a.err.Error() + " (default deny)"
			}
			if !a.ok {
				return ApprovalDenied, "denied by approval callback"
			}
			return ApprovalApproved, "approved by approval callback"
		case <-timer.C:
			return ApprovalDenied, fmt.Sprintf("approval timed out after %v (default deny)", timeout)
		}
	})
}

// GuardStats summarizes a Guard's enforcement activity.
type GuardStats struct {
	// SuppressedMitigations counts mitigation recommendations degraded to
	// ActionNone by a tripped budget.
	SuppressedMitigations uint64 `json:"suppressed_mitigations"`
	// BudgetTrips counts budget limit crossings (each recorded once in
	// the audit log per trip, not per suppressed decision).
	BudgetTrips int `json:"budget_trips"`
	// Promotions counts promotions executed through the guard.
	Promotions int `json:"promotions"`
	// DeniedPromotions counts promotions blocked by the promotion budget
	// or the approval hook.
	DeniedPromotions int `json:"denied_promotions"`
	// Rollbacks counts probation regressions rolled back.
	Rollbacks int `json:"rollbacks"`
	// ProbationActive reports whether a promoted model is currently on
	// probation.
	ProbationActive bool `json:"probation_active"`
	// BudgetRecoveries counts tripped mitigation budgets recovering (a
	// mitigation served again after a trip), the closing transitions
	// paired with BudgetTrips in the audit log.
	BudgetRecoveries int `json:"budget_recoveries"`
	// ProbationPasses counts promoted models that survived their
	// post-promotion probation window.
	ProbationPasses int `json:"probation_passes"`
	// VetoesByReason breaks SuppressedMitigations down by the tripped
	// budget (see the guard package's Reason constants).
	VetoesByReason map[string]uint64 `json:"vetoes_by_reason,omitempty"`
}

// probationRun is one active post-promotion probation window.
type probationRun struct {
	score *evalx.Probation
	// reference is the replaced incumbent, run as the counterfactual.
	reference Policy
	promoted  string
}

// Guard is the production guardrail layer between an OnlineLearner and
// its Controller: enforceable budgets, promotion approvals, and
// rollback-on-regression, all independent of the learner's own judgment.
// It enforces three disciplines the drift→retrain→promote loop cannot be
// trusted to keep for itself:
//
//   - Budgets. Per-node checkpoint node-hours, fleet-wide mitigation
//     rate, and promotions per window, tracked in sliding windows over
//     the served Decision stream. A tripped mitigation budget degrades
//     Recommend gracefully (the decision becomes ActionNone with
//     Decision.Vetoed set — serving never blocks or errors); a tripped
//     promotion budget freezes promotions.
//   - Approval. Every shadow-winning candidate passes the ApprovalHook
//     before SwapPolicy; deny (or an unresponsive approver) discards it.
//   - Probation. After each promotion the replaced incumbent keeps
//     scoring as a counterfactual (evalx.Probation, the same ShadowEval
//     accounting as the promotion gate); if the promoted model regresses
//     past tolerance within the window, the guard walks the
//     ModelHeader.Parent lineage chain back to a retained ancestor and
//     hot-swaps it in.
//
// Every budget trip, approval verdict, rollback and probation pass is
// recorded as a LifecycleEvent; a learner created with WithGuard merges
// them into its own audit log. Construct with NewGuard, then pass to
// NewOnlineLearner via WithGuard:
//
//	ctl := uerl.NewController(policy)
//	g := uerl.NewGuard(ctl,
//	    uerl.WithNodeCheckpointBudget(0.5, 24*time.Hour),
//	    uerl.WithPromotionBudget(4),
//	    uerl.WithApprovalHook(uerl.ApprovalCallback(time.Minute, pageOperator)))
//	learner := uerl.NewOnlineLearner(ctl, uerl.WithGuard(g), ...)
//
// Without a learner, drive the guard from your own event loop: it vetoes
// through Recommend automatically once attached, but budget accounting
// and probation scoring need the served stream — call ObserveDecision
// for every served decision and ObserveUE for every realized UE.
//
// Guard is safe for concurrent use. All times are telemetry time from
// the event stream, so guarded runs replay deterministically.
type Guard struct {
	ctl     *Controller
	cfg     guardConfig
	budgets *guard.Budgets

	mu sync.Mutex
	//uerl:guarded-by mu
	events []LifecycleEvent
	// trippedNode / trippedFleet dedupe budget-trip audit events: one per
	// limit crossing, cleared when a mitigation is served again.
	//uerl:guarded-by mu
	trippedNode map[int]bool
	//uerl:guarded-by mu
	trippedFleet bool
	// retained maps version → policy for the rollback registry (bounded,
	// newest retainedCap ancestors); lineageOrder tracks eviction order.
	//uerl:guarded-by mu
	retained map[string]Policy
	//uerl:guarded-by mu
	parentOf map[string]string
	//uerl:guarded-by mu
	lineageOrder []string
	//uerl:guarded-by mu
	probation *probationRun
	//uerl:guarded-by mu
	suppressed uint64
	//uerl:guarded-by mu
	vetoesByReason map[string]uint64
	//uerl:guarded-by mu
	trips int
	//uerl:guarded-by mu
	recoveries int
	//uerl:guarded-by mu
	probationPasses int
	//uerl:guarded-by mu
	promotions int
	//uerl:guarded-by mu
	denied int
	//uerl:guarded-by mu
	rollbacks int
}

// retainedCap bounds the rollback registry: the newest ancestors kept
// live for lineage-chain rollback. Older models must be reloaded from
// their SaveModel artifacts.
const retainedCap = 16

// NewGuard builds the guardrail layer around ctl and attaches it, so
// Recommend consults the mitigation budgets from then on. One guard per
// controller; a second NewGuard on the same controller panics.
func NewGuard(ctl *Controller, opts ...GuardOption) *Guard {
	if ctl == nil {
		panic("uerl: NewGuard with nil controller")
	}
	cfg := defaultGuardConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	g := &Guard{
		ctl: ctl,
		cfg: cfg,
		budgets: guard.NewBudgets(guard.Config{
			NodeCheckpointNodeHours: cfg.nodeBudgetNodeHours,
			NodeWindow:              cfg.nodeWindow,
			FleetMaxMitigations:     cfg.fleetMitigations,
			FleetWindow:             cfg.fleetWindow,
			MaxPromotions:           cfg.promotionsPerWindow,
			PromotionWindow:         cfg.promotionWindow,
		}),
		trippedNode:    map[int]bool{},
		vetoesByReason: map[string]uint64{},
		retained:       map[string]Policy{},
		parentOf:       map[string]string{},
	}
	ctl.attachGuard(g)
	return g
}

// Controller returns the guarded controller.
func (g *Guard) Controller() *Controller { return g.ctl }

// mitigationCostNodeHours is the checkpoint cost one mitigation charges
// against the budgets.
func (g *Guard) mitigationCostNodeHours() float64 {
	return g.cfg.mitigationCostNodeMinutes / 60
}

// allowMitigation is the Recommend-path budget consult (read-shaped, no
// charge, no audit — see ObserveDecision).
func (g *Guard) allowMitigation(node int, at time.Time) (bool, string) {
	return g.budgets.AllowMitigation(node, at, g.mitigationCostNodeHours())
}

// ObserveDecision accounts one served decision from the authoritative
// event stream: served mitigations charge the budget windows, vetoed
// decisions record the budget trip (once per limit crossing), and active
// probation scores the decision against the replaced incumbent's
// counterfactual. An OnlineLearner with this guard attached calls it for
// every decision it processes; standalone users call it themselves.
func (g *Guard) ObserveDecision(d Decision) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case d.Vetoed:
		g.suppressed++
		g.vetoesByReason[d.VetoReason]++
		g.recordTripLocked(d)
	case d.Mitigate():
		g.budgets.ChargeMitigation(d.Node, d.Time, g.mitigationCostNodeHours())
		// A served mitigation means the budgets recovered: re-arm the
		// trip audit for the next crossing and record the recovery — the
		// closing bracket of the trip event, once per tripped state.
		g.recordRecoveryLocked(d)
	}
	if g.probation != nil {
		ref := g.probation.reference.Decide(Snapshot{Node: d.Node, Time: d.Time, Features: d.Features})
		g.probation.score.Decision(d.Node, d.Time, d.Mitigate(), ref.Mitigate())
		g.judgeProbationLocked(d.Time)
	}
}

// ObserveUE accounts one realized uncorrected error: active probation
// charges it to both scoreboards (the rollback trigger when the promoted
// model missed it). realizedCostNodeHours is the realized Eq. 3 cost.
func (g *Guard) ObserveUE(node int, at time.Time, realizedCostNodeHours float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.probation == nil {
		return
	}
	g.probation.score.UE(node, at, realizedCostNodeHours)
	g.judgeProbationLocked(at)
}

// recordTripLocked records a budget-trip audit event on the veto's limit
// crossing, deduped until the budget recovers. Caller holds g.mu.
//
//uerl:locked mu
func (g *Guard) recordTripLocked(d Decision) {
	switch d.VetoReason {
	case guard.ReasonNodeBudget:
		if g.trippedNode[d.Node] {
			return
		}
		g.trippedNode[d.Node] = true
		g.trips++
		g.recordLocked(LifecycleEvent{
			Kind: LifecycleBudgetTrip, Time: d.Time, Generation: g.promotions,
			ModelVersion: d.ModelVersion, Score: g.budgets.NodeSpend(d.Node, d.Time),
			Detail: fmt.Sprintf("node %d checkpoint budget tripped: %.3f nh in sliding %s (limit %.3f nh); mitigation suppressed",
				d.Node, g.budgets.NodeSpend(d.Node, d.Time), g.cfg.nodeWindow, g.cfg.nodeBudgetNodeHours),
		})
	case guard.ReasonFleetBudget:
		if g.trippedFleet {
			return
		}
		g.trippedFleet = true
		g.trips++
		g.recordLocked(LifecycleEvent{
			Kind: LifecycleBudgetTrip, Time: d.Time, Generation: g.promotions,
			ModelVersion: d.ModelVersion, Score: float64(g.budgets.FleetMitigations(d.Time)),
			Detail: fmt.Sprintf("fleet mitigation budget tripped: %d mitigations in sliding %s (limit %d); mitigation suppressed",
				g.budgets.FleetMitigations(d.Time), g.cfg.fleetWindow, g.cfg.fleetMitigations),
		})
	}
}

// recordRecoveryLocked clears tripped budget states a served mitigation
// proves recovered, recording one budget-recover audit event per cleared
// trip. Caller holds g.mu.
//
//uerl:locked mu
func (g *Guard) recordRecoveryLocked(d Decision) {
	if g.trippedNode[d.Node] {
		delete(g.trippedNode, d.Node)
		g.recoveries++
		g.recordLocked(LifecycleEvent{
			Kind: LifecycleBudgetRecover, Time: d.Time, Generation: g.promotions,
			ModelVersion: d.ModelVersion, Score: g.budgets.NodeSpend(d.Node, d.Time),
			Detail: fmt.Sprintf("node %d checkpoint budget recovered: %.3f nh in sliding %s (limit %.3f nh); mitigation resumed",
				d.Node, g.budgets.NodeSpend(d.Node, d.Time), g.cfg.nodeWindow, g.cfg.nodeBudgetNodeHours),
		})
	}
	if g.trippedFleet {
		g.trippedFleet = false
		g.recoveries++
		g.recordLocked(LifecycleEvent{
			Kind: LifecycleBudgetRecover, Time: d.Time, Generation: g.promotions,
			ModelVersion: d.ModelVersion, Score: float64(g.budgets.FleetMitigations(d.Time)),
			Detail: fmt.Sprintf("fleet mitigation budget recovered: %d mitigations in sliding %s (limit %d); mitigation resumed",
				g.budgets.FleetMitigations(d.Time), g.cfg.fleetWindow, g.cfg.fleetMitigations),
		})
	}
}

// reviewPromotion runs the promotion gates — budget first, then the
// approval hook — recording an audit event for every verdict. It returns
// whether the promotion may proceed; the learner calls it after the
// shadow gate and before SwapPolicy.
func (g *Guard) reviewPromotion(req PromotionRequest) (bool, string) {
	if ok, _ := g.budgets.AllowPromotion(req.Time); !ok {
		g.mu.Lock()
		g.denied++
		g.trips++
		detail := fmt.Sprintf("promotion budget tripped: %d promotions in sliding %s (limit %d); promotion of %s frozen",
			g.budgets.Promotions(req.Time), g.cfg.promotionWindow, g.cfg.promotionsPerWindow, req.Candidate)
		g.recordLocked(LifecycleEvent{
			Kind: LifecycleBudgetTrip, Time: req.Time, Generation: req.Generation,
			ModelVersion: req.Candidate, Parent: req.Incumbent,
			Score: float64(g.budgets.Promotions(req.Time)), Detail: detail,
		})
		g.mu.Unlock()
		return false, detail
	}
	// The hook may block (human approval); keep g.mu released so budget
	// vetoes and audits proceed while it decides.
	verdict, reason := g.cfg.hook.Review(req)
	g.mu.Lock()
	defer g.mu.Unlock()
	ev := LifecycleEvent{
		Time: req.Time, Generation: req.Generation,
		ModelVersion: req.Candidate, Parent: req.Incumbent, Score: req.ShadowAdvantage,
	}
	if verdict != ApprovalApproved {
		g.denied++
		ev.Kind = LifecycleApprovalDeny
		ev.Detail = fmt.Sprintf("promotion denied: %s", reason)
		g.recordLocked(ev)
		return false, ev.Detail
	}
	ev.Kind = LifecycleApprovalGrant
	ev.Detail = fmt.Sprintf("promotion approved: %s", reason)
	g.recordLocked(ev)
	return true, ""
}

// notePromotion records an executed promotion: charges the promotion
// budget, retains the replaced incumbent for lineage-chain rollback, and
// opens the probation window. The learner calls it right after
// SwapPolicy; the incumbent is the policy the swap replaced.
func (g *Guard) notePromotion(incumbent, promoted Policy, at time.Time) {
	g.budgets.ChargePromotion(at)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.promotions++
	g.retainLocked(incumbent)
	g.parentOf[promoted.Version()] = incumbent.Version()
	if g.cfg.probationDecisions > 0 {
		g.probation = &probationRun{
			score: evalx.NewProbation(evalx.ProbationConfig{
				Shadow: evalx.ShadowConfig{
					MitigationCostNodeHours: g.mitigationCostNodeHours(),
					Restartable:             g.cfg.restartable,
				},
				MinDecisions:       g.cfg.probationDecisions,
				ToleranceNodeHours: g.cfg.probationToleranceNH,
			}),
			reference: incumbent,
			promoted:  promoted.Version(),
		}
	}
}

// retainLocked adds a policy to the bounded rollback registry. Caller
// holds g.mu.
//
//uerl:locked mu
func (g *Guard) retainLocked(p Policy) {
	v := p.Version()
	if _, ok := g.retained[v]; !ok {
		g.lineageOrder = append(g.lineageOrder, v)
		if len(g.lineageOrder) > retainedCap {
			evict := g.lineageOrder[0]
			g.lineageOrder = g.lineageOrder[1:]
			delete(g.retained, evict)
		}
	}
	g.retained[v] = p
}

// judgeProbationLocked polls the probation verdict and executes the
// rollback (or closes the window) when it is decided. Caller holds g.mu.
//
//uerl:locked mu
func (g *Guard) judgeProbationLocked(at time.Time) {
	run := g.probation
	if run == nil {
		return
	}
	v := run.score.Verdict()
	if !v.Decided {
		return
	}
	g.probation = nil
	if !v.Regressed {
		g.probationPasses++
		g.recordLocked(LifecycleEvent{
			Kind: LifecycleProbationPass, Time: at, Generation: g.promotions,
			ModelVersion: run.promoted, Parent: run.reference.Version(), Score: v.MarginNodeHours,
			Detail: fmt.Sprintf("probation passed after %d decisions / %d UEs: margin %+.2f nh within %.2f nh tolerance",
				v.Decisions, v.UEs, v.MarginNodeHours, g.cfg.probationToleranceNH),
		})
		return
	}
	g.rollbackLocked(at, run, v)
}

// rollbackLocked walks the serving model's ModelHeader.Parent lineage
// chain to the nearest retained ancestor and hot-swaps it back in.
// Caller holds g.mu.
//
//uerl:locked mu
func (g *Guard) rollbackLocked(at time.Time, run *probationRun, v evalx.ProbationVerdict) {
	cur := g.ctl.Policy()
	var target Policy
	for ver := ModelParent(cur); ver != ""; ver = g.parentOf[ver] {
		if p, ok := g.retained[ver]; ok {
			target = p
			break
		}
	}
	ev := LifecycleEvent{
		Kind: LifecycleRollback, Time: at, Generation: g.promotions,
		Score: v.MarginNodeHours,
	}
	if target == nil {
		// The serving model carries no retained lineage (e.g. an operator
		// swapped mid-probation): record the regression, keep serving.
		ev.ModelVersion = cur.Version()
		ev.Detail = fmt.Sprintf("rollback aborted: no retained ancestor for %s (regressed %+.2f nh over %d decisions)",
			cur.Version(), v.MarginNodeHours, v.Decisions)
		g.recordLocked(ev)
		return
	}
	g.ctl.SwapPolicy(target)
	g.rollbacks++
	ev.ModelVersion = target.Version()
	ev.Parent = ModelParent(target)
	ev.Detail = fmt.Sprintf("promoted %s regressed %+.2f nh over %d decisions / %d UEs (tolerance %.2f nh); rolled back to %s via lineage",
		run.promoted, v.MarginNodeHours, v.Decisions, v.UEs, g.cfg.probationToleranceNH, target.Version())
	g.recordLocked(ev)
}

// recordLocked appends an audit event. Caller holds g.mu.
//
//uerl:locked mu
func (g *Guard) recordLocked(ev LifecycleEvent) {
	g.events = append(g.events, ev)
}

// Events returns a defensive copy of the guard's audit log (budget
// trips, approval verdicts, rollbacks, probation passes). A learner with
// this guard attached also merges these into its own Events log.
func (g *Guard) Events() []LifecycleEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]LifecycleEvent, len(g.events))
	copy(out, g.events)
	return out
}

// eventsSince returns a defensive copy of the audit log from index n on,
// plus the new log length — the learner's merge cursor.
func (g *Guard) eventsSince(n int) ([]LifecycleEvent, int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n < 0 || n > len(g.events) {
		n = len(g.events)
	}
	out := make([]LifecycleEvent, len(g.events)-n)
	copy(out, g.events[n:])
	return out, len(g.events)
}

// Stats summarizes the guard's enforcement activity.
func (g *Guard) Stats() GuardStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := GuardStats{
		SuppressedMitigations: g.suppressed,
		BudgetTrips:           g.trips,
		Promotions:            g.promotions,
		DeniedPromotions:      g.denied,
		Rollbacks:             g.rollbacks,
		ProbationActive:       g.probation != nil,
		BudgetRecoveries:      g.recoveries,
		ProbationPasses:       g.probationPasses,
	}
	if len(g.vetoesByReason) > 0 {
		st.VetoesByReason = make(map[string]uint64, len(g.vetoesByReason))
		for reason, n := range g.vetoesByReason {
			st.VetoesByReason[reason] = n
		}
	}
	return st
}
