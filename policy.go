package uerl

import (
	"fmt"
	"time"

	"repro/internal/evalx"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/policies"
	"repro/internal/rf"
	"repro/internal/rl"
)

// PolicyKind names one of the §4.2 policy families.
type PolicyKind string

const (
	// PolicyNever never mitigates (the no-mitigation baseline).
	PolicyNever PolicyKind = "never"
	// PolicyAlways mitigates on every telemetry event.
	PolicyAlways PolicyKind = "always"
	// PolicySC20RF thresholds the SC'20 random-forest UE score.
	PolicySC20RF PolicyKind = "sc20-rf"
	// PolicyMyopicRF mitigates when RF score × potential UE cost exceeds
	// the mitigation cost.
	PolicyMyopicRF PolicyKind = "myopic-rf"
	// PolicyRL is the paper's dueling double DQN agent.
	PolicyRL PolicyKind = "rl"
	// PolicyOracle mitigates exactly on the last event before each UE
	// (future knowledge; not realizable, not serializable).
	PolicyOracle PolicyKind = "oracle"
)

// PolicyKinds lists every kind TrainPolicy accepts, in §4.2 order.
func PolicyKinds() []PolicyKind {
	return []PolicyKind{PolicyNever, PolicyAlways, PolicySC20RF, PolicyMyopicRF, PolicyRL, PolicyOracle}
}

// ParsePolicyKind converts a CLI string to a PolicyKind.
func ParsePolicyKind(s string) (PolicyKind, error) {
	for _, k := range PolicyKinds() {
		if s == string(k) {
			return k, nil
		}
	}
	return "", fmt.Errorf("uerl: unknown policy kind %q (want one of %v)", s, PolicyKinds())
}

// Policy is the unified serving interface over every §4.2 approach: a
// decision function from a node state Snapshot to a Decision, plus the
// identity a serving layer needs (kind, report name, artifact version).
//
// Implementations served by a Controller must be safe for concurrent use;
// all policies returned by this package are. Custom implementations are
// welcome — any Policy can be served by NewController and scored by
// System.EvaluatePolicy — but only the built-in kinds can be persisted
// with SaveModel.
type Policy interface {
	// Kind reports the policy family.
	Kind() PolicyKind
	// Name identifies the policy in reports.
	Name() string
	// Version identifies the model artifact (content-addressed for
	// trained kinds, so two identical weight sets share a version).
	Version() string
	// Decide maps a raw Table 1 feature snapshot to a decision. The
	// returned Decision must have Action and Score set; the serving layer
	// fills the bookkeeping fields.
	Decide(s Snapshot) Decision
}

// ---- Never / Always ----

// staticPolicy is a trivial constant policy (Never / Always).
type staticPolicy struct {
	kind  PolicyKind
	name  string
	act   Action
	score float64
}

// NeverPolicy returns the Never-mitigate baseline as a servable Policy.
func NeverPolicy() Policy {
	return &staticPolicy{kind: PolicyNever, name: policies.Never{}.Name(), act: ActionNone, score: -1}
}

// AlwaysPolicy returns the Always-mitigate baseline as a servable Policy.
func AlwaysPolicy() Policy {
	return &staticPolicy{kind: PolicyAlways, name: policies.Always{}.Name(), act: ActionMitigate, score: 1}
}

func (p *staticPolicy) Kind() PolicyKind { return p.kind }
func (p *staticPolicy) Name() string     { return p.name }
func (p *staticPolicy) Version() string  { return staticVersion(p.kind) }

func (p *staticPolicy) Decide(s Snapshot) Decision {
	return decisionFor(p, s, p.act, p.score)
}

// ---- SC20-RF ----

// rfPolicy serves the SC20-RF threshold policy.
type rfPolicy struct {
	d        *policies.RFThreshold
	version  string
	parent   string
	training *TrainingInfo
}

func newRFPolicy(forest *rf.Forest, threshold float64, info *TrainingInfo) (*rfPolicy, error) {
	version, err := forestVersion(PolicySC20RF, forest, threshold)
	if err != nil {
		return nil, err
	}
	return &rfPolicy{
		d:        &policies.RFThreshold{Forest: forest, Threshold: threshold},
		version:  version,
		training: info,
	}, nil
}

func (p *rfPolicy) Kind() PolicyKind { return PolicySC20RF }
func (p *rfPolicy) Name() string     { return p.d.Name() }
func (p *rfPolicy) Version() string  { return p.version }

func (p *rfPolicy) Decide(s Snapshot) Decision {
	ctx := policies.Context{Node: s.Node, Time: s.Time, Features: s.vector()}
	// One forest inference: the score's zero crossing IS the decision
	// boundary (probability margin over the threshold).
	score := p.d.Score(ctx)
	return decisionFor(p, s, actionOf(score > 0), score)
}

// ---- Myopic-RF ----

// myopicPolicy serves the cost-aware Myopic-RF policy.
type myopicPolicy struct {
	d        *policies.MyopicRF
	version  string
	parent   string
	training *TrainingInfo
}

func newMyopicPolicy(forest *rf.Forest, mitigationCostNodeHours float64, info *TrainingInfo) (*myopicPolicy, error) {
	version, err := forestVersion(PolicyMyopicRF, forest, mitigationCostNodeHours)
	if err != nil {
		return nil, err
	}
	return &myopicPolicy{
		d:        &policies.MyopicRF{Forest: forest, MitigationCostNodeHours: mitigationCostNodeHours},
		version:  version,
		training: info,
	}, nil
}

func (p *myopicPolicy) Kind() PolicyKind { return PolicyMyopicRF }
func (p *myopicPolicy) Name() string     { return p.d.Name() }
func (p *myopicPolicy) Version() string  { return p.version }

func (p *myopicPolicy) Decide(s Snapshot) Decision {
	ctx := policies.Context{Node: s.Node, Time: s.Time, Features: s.vector()}
	// One forest inference, as in rfPolicy: score > 0 is the decision.
	score := p.d.Score(ctx)
	return decisionFor(p, s, actionOf(score > 0), score)
}

// ---- RL ----

// rlPolicy serves the trained Q-network. Network scratch and normalization
// buffers are pooled, so one instance can serve all controller shards
// concurrently and a Decide call allocates nothing in steady state.
type rlPolicy struct {
	q        *rl.SharedQPolicy
	version  string
	parent   string
	training *TrainingInfo
}

// newRLPolicy wraps a frozen network (the policy takes ownership; Clone
// first if the source keeps training).
func newRLPolicy(net *nn.Network, info *TrainingInfo) (*rlPolicy, error) {
	if got := net.Config().Inputs; got != features.Dim {
		return nil, fmt.Errorf("uerl: model expects %d inputs, this build uses %d", got, features.Dim)
	}
	// Decide reads exactly [Q(none), Q(mitigate)]; reject any artifact with
	// a different action count rather than silently comparing garbage.
	if got := net.Config().Outputs; got != 2 {
		return nil, fmt.Errorf("uerl: model has %d outputs, this serving layer decides over 2 actions", got)
	}
	version, err := networkVersion(PolicyRL, net)
	if err != nil {
		return nil, err
	}
	return &rlPolicy{q: rl.NewSharedQPolicy(net), version: version, training: info}, nil
}

func (p *rlPolicy) Kind() PolicyKind { return PolicyRL }
func (p *rlPolicy) Name() string     { return "RL" }
func (p *rlPolicy) Version() string  { return p.version }

func (p *rlPolicy) Decide(s Snapshot) Decision {
	var qv [2]float64
	s.vector().WithNormalized(func(norm []float64) {
		p.q.QValuesInto(qv[:], norm)
	})
	act := ActionNone
	if qv[1] > qv[0] {
		act = ActionMitigate
	}
	d := decisionFor(p, s, act, qv[1]-qv[0])
	d.QValues = qv
	d.HasQ = true
	return d
}

// ---- Oracle ----

// oraclePolicy serves the future-knowledge Oracle over a fixed point set.
type oraclePolicy struct {
	d *policies.Oracle
}

func (p *oraclePolicy) Kind() PolicyKind { return PolicyOracle }
func (p *oraclePolicy) Name() string     { return p.d.Name() }
func (p *oraclePolicy) Version() string  { return staticVersion(PolicyOracle) }

func (p *oraclePolicy) Decide(s Snapshot) Decision {
	ctx := policies.Context{Node: s.Node, Time: s.Time, Features: s.vector()}
	mit := p.d.Decide(ctx)
	score := -1.0
	if mit {
		score = 1
	}
	return decisionFor(p, s, actionOf(mit), score)
}

// ---- shared helpers ----

// actionOf converts a Decider boolean to an Action.
func actionOf(mitigate bool) Action {
	if mitigate {
		return ActionMitigate
	}
	return ActionNone
}

// decisionFor assembles the Decision a policy returns from Decide.
func decisionFor(p Policy, s Snapshot, act Action, score float64) Decision {
	return Decision{
		Node:         s.Node,
		Time:         s.Time,
		Action:       act,
		Score:        score,
		Features:     s.Features,
		Policy:       p.Name(),
		ModelVersion: p.Version(),
	}
}

// trainingInfo snapshots the system configuration that produced a model.
func (s *System) trainingInfo() *TrainingInfo {
	return &TrainingInfo{
		Budget:                    s.cfg.Budget.String(),
		Seed:                      s.cfg.Seed,
		MitigationCostNodeMinutes: s.cfg.MitigationCostNodeMinutes,
		Restartable:               s.cfg.Restartable,
		KernelVersion:             s.cvConfig().ResolvedKernel(),
	}
}

// TrainPolicy trains (when the kind needs fitting) and returns the kind's
// policy, ready to be served by a Controller, persisted with SaveModel
// (Oracle excepted), or scored with EvaluatePolicy. Trained kinds share
// one cached single-split fit (first 75% of the log, the §4.1 protocol),
// so training several kinds costs one training run.
func (s *System) TrainPolicy(kind PolicyKind) (Policy, error) {
	switch kind {
	case PolicyNever:
		return NeverPolicy(), nil
	case PolicyAlways:
		return AlwaysPolicy(), nil
	case PolicySC20RF:
		sp := s.trainedSplit()
		return newRFPolicy(sp.Forest, sp.Threshold, s.trainingInfo())
	case PolicyMyopicRF:
		sp := s.trainedSplit()
		return newMyopicPolicy(sp.Forest, sp.Env.MitigationCostNodeHours(), s.trainingInfo())
	case PolicyRL:
		sp := s.trainedSplit()
		if sp.Net == nil {
			return nil, fmt.Errorf("uerl: split trained without an RL agent")
		}
		return newRLPolicy(sp.Net.Clone(), s.trainingInfo())
	case PolicyOracle:
		rc := s.replayContext()
		pts := evalx.OraclePoints(rc.byNode, time.Time{}, time.Time{})
		return &oraclePolicy{d: policies.NewOracle(pts)}, nil
	}
	return nil, fmt.Errorf("uerl: unknown policy kind %q (want one of %v)", kind, PolicyKinds())
}

// policyDecider adapts a serving Policy back to the replay engine's
// Decider interface so EvaluatePolicy can account it like any §4.2
// approach.
type policyDecider struct{ p Policy }

func (d policyDecider) Name() string { return d.p.Name() }

func (d policyDecider) Decide(ctx policies.Context) bool {
	return d.p.Decide(Snapshot{Node: ctx.Node, Time: ctx.Time, Features: ctx.Features}).Mitigate()
}

// ConcurrentSafe implements policies.ConcurrentDecider. Every policy this
// package constructs is safe for concurrent Decide calls, so the replay
// engine may fan them out across workers. Custom Policy implementations
// are only required to be concurrency-safe when served by a Controller,
// so they replay serially unless they opt in via a
// `ConcurrentSafe() bool` method.
func (d policyDecider) ConcurrentSafe() bool {
	switch d.p.(type) {
	case *staticPolicy, *rfPolicy, *myopicPolicy, *rlPolicy, *oraclePolicy:
		return true
	}
	if cs, ok := d.p.(interface{ ConcurrentSafe() bool }); ok {
		return cs.ConcurrentSafe()
	}
	return false
}

// EvaluatePolicy replays one policy — built-in or custom — over the
// system's world under the standard workload model and accounts costs on
// the held-out final 25% of the log span (the same window the single-split
// trained policies are fitted against), so results are comparable across
// policies and with TrainPolicy artifacts.
func (s *System) EvaluatePolicy(p Policy) (PolicyCost, error) {
	if p == nil {
		return PolicyCost{}, fmt.Errorf("uerl: nil policy")
	}
	rc := s.replayContext()
	res := evalx.Replay(policyDecider{p: p}, rc.byNode, rc.sampler, evalx.ReplayConfig{
		Env:     s.cvConfig().Env,
		JobSeed: s.cfg.Seed,
		From:    rc.trainTo,
	})
	return PolicyCost{
		Policy:         res.Policy,
		TotalNodeHours: res.TotalCost(),
		UENodeHours:    res.UECost,
		MitigationNH:   res.MitigationCost + res.TrainingCost,
		Mitigations:    res.Metrics.Mitigations,
		Recall:         res.Metrics.Recall(),
		Precision:      res.Metrics.Precision(),
	}, nil
}
