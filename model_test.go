package uerl

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/rf"
)

// testForest trains a tiny deterministic forest on PredictorDim features.
func testForest(t testing.TB) *rf.Forest {
	t.Helper()
	rng := mathx.NewRNG(7)
	var x [][]float64
	var y []bool
	for i := 0; i < 200; i++ {
		v := make([]float64, features.PredictorDim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		x = append(x, v)
		y = append(y, v[0] > 0.5)
	}
	return rf.TrainForest(x, y, rf.DefaultForestConfig())
}

// sampleSnapshots returns probe states covering quiet and stormy nodes.
func sampleSnapshots() []Snapshot {
	base := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	var out []Snapshot
	for i := 0; i < 16; i++ {
		var f [FeatureDim]float64
		f[features.CEsTotal] = float64(i * 100)
		f[features.CEsSinceLastEvent] = float64(i)
		f[features.RowsWithCEs] = float64(i % 5)
		f[features.UEWarnings] = float64(i % 2)
		f[features.UECost] = float64(i) * 750
		out = append(out, Snapshot{Node: i, Time: base.Add(time.Duration(i) * time.Hour), Features: f})
	}
	return out
}

// assertSamePolicy checks two policies agree on identity and decisions.
func assertSamePolicy(t *testing.T, want, got Policy) {
	t.Helper()
	if got.Kind() != want.Kind() || got.Name() != want.Name() {
		t.Fatalf("restored policy is %s/%s, want %s/%s", got.Kind(), got.Name(), want.Kind(), want.Name())
	}
	if got.Version() != want.Version() {
		t.Fatalf("restored version %q, want %q", got.Version(), want.Version())
	}
	for _, s := range sampleSnapshots() {
		dw, dg := want.Decide(s), got.Decide(s)
		if dw.Action != dg.Action {
			t.Fatalf("restored %s policy disagrees at %+v", got.Kind(), s)
		}
		if dw.Score != dg.Score {
			t.Fatalf("restored %s policy score %v, want %v", got.Kind(), dg.Score, dw.Score)
		}
	}
}

// roundTrip saves and reloads a policy through the artifact format.
func roundTrip(t *testing.T, p Policy) Policy {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveModel(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestModelRoundTripRL(t *testing.T) {
	p := testRLPolicy(t)
	got := roundTrip(t, p)
	assertSamePolicy(t, p, got)
	if !strings.HasPrefix(got.Version(), "rl.v1.") {
		t.Fatalf("unexpected version format %q", got.Version())
	}
}

func TestModelRoundTripStatic(t *testing.T) {
	for _, p := range []Policy{NeverPolicy(), AlwaysPolicy()} {
		assertSamePolicy(t, p, roundTrip(t, p))
	}
}

func TestModelRoundTripForests(t *testing.T) {
	forest := testForest(t)
	rfp, err := newRFPolicy(forest, 0.4, &TrainingInfo{Budget: "ci", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	assertSamePolicy(t, rfp, roundTrip(t, rfp))

	myp, err := newMyopicPolicy(forest, 2.0/60, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePolicy(t, myp, roundTrip(t, myp))

	// The threshold participates in the version, so two artifacts with the
	// same forest but different decision rules never alias.
	other, err := newRFPolicy(forest, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if other.Version() == rfp.Version() {
		t.Fatal("different thresholds share a model version")
	}
}

// tamper decodes a saved artifact, edits it, and re-encodes it.
func tamper(t *testing.T, p Policy, edit func(env map[string]json.RawMessage, header map[string]any)) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveModel(&buf, p); err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	var header map[string]any
	if err := json.Unmarshal(env["header"], &header); err != nil {
		t.Fatal(err)
	}
	edit(env, header)
	hdr, err := json.Marshal(header)
	if err != nil {
		t.Fatal(err)
	}
	env["header"] = hdr
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestModelLineageRoundTrip(t *testing.T) {
	// The parent needs distinct weights: identical policies share a
	// content version, and a same-version parent is a self-parent cycle.
	pnet := nn.New(nn.Config{Inputs: features.Dim, Hidden: []int{16, 8}, Outputs: 2, Dueling: true, Seed: 4})
	parent, err := newRLPolicy(pnet, nil)
	if err != nil {
		t.Fatal(err)
	}
	child := testRLPolicy(t)
	if got := ModelParent(child); got != "" {
		t.Fatalf("fresh policy has parent %q", got)
	}
	if err := SetModelParent(child, parent.Version()); err != nil {
		t.Fatal(err)
	}
	if got := ModelParent(child); got != parent.Version() {
		t.Fatalf("ModelParent = %q, want %q", got, parent.Version())
	}

	// Lineage survives the artifact round trip...
	var buf bytes.Buffer
	if err := SaveModel(&buf, child); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	restored, err := LoadModel(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := ModelParent(restored); got != parent.Version() {
		t.Fatalf("restored parent = %q, want %q", got, parent.Version())
	}
	// ...is visible in the artifact header...
	var env struct {
		Header ModelHeader `json:"header"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if env.Header.Parent != parent.Version() {
		t.Fatalf("header parent = %q, want %q", env.Header.Parent, parent.Version())
	}
	// ...and is metadata only: the content-addressed version must not
	// change when the lineage does.
	if restored.Version() != child.Version() {
		t.Fatalf("lineage changed the content version: %q vs %q", restored.Version(), child.Version())
	}

	// Forest kinds chain the same way.
	rfp, err := newRFPolicy(testForest(t), 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := SetModelParent(rfp, "sc20-rf.v1.feedbeef"); err != nil {
		t.Fatal(err)
	}
	if got := ModelParent(roundTrip(t, rfp)); got != "sc20-rf.v1.feedbeef" {
		t.Fatalf("forest lineage lost: %q", got)
	}
}

// A model naming itself as its lineage parent is a one-link cycle: every
// chain walker (guard rollback, uerlserve's lineage report) would loop.
func TestModelRejectsSelfParent(t *testing.T) {
	p := testRLPolicy(t)
	if err := SetModelParent(p, p.Version()); err == nil {
		t.Fatal("SetModelParent accepted a self-parent cycle")
	}
	if got := ModelParent(p); got != "" {
		t.Fatalf("rejected self-parent was still recorded: %q", got)
	}

	// The same cycle hand-edited into an artifact header must not load.
	data := tamper(t, testRLPolicy(t), func(_ map[string]json.RawMessage, h map[string]any) {
		h["parent"] = h["version"]
	})
	if _, err := LoadModel(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "parent") {
		t.Fatalf("self-parent artifact accepted (err=%v)", err)
	}
}

func TestSetModelParentUnsupportedKinds(t *testing.T) {
	if err := SetModelParent(NeverPolicy(), "x"); err == nil {
		t.Fatal("static policy accepted lineage")
	}
	if ModelParent(AlwaysPolicy()) != "" {
		t.Fatal("static policy reports lineage")
	}
}

func TestLoadModelRejectsParentOnStaticKind(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, AlwaysPolicy()); err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	var header map[string]any
	if err := json.Unmarshal(env["header"], &header); err != nil {
		t.Fatal(err)
	}
	header["parent"] = "always.v1"
	hdr, err := json.Marshal(header)
	if err != nil {
		t.Fatal(err)
	}
	env["header"] = hdr
	edited, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bytes.NewReader(edited)); err == nil {
		t.Fatal("artifact with hand-edited lineage on a static kind loaded")
	}
}

func TestLoadModelRejectsWrongSchema(t *testing.T) {
	data := tamper(t, AlwaysPolicy(), func(_ map[string]json.RawMessage, h map[string]any) {
		h["schema"] = ModelSchemaVersion + 1
	})
	if _, err := LoadModel(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema artifact accepted (err=%v)", err)
	}
}

func TestLoadModelRejectsWrongFeatureDim(t *testing.T) {
	data := tamper(t, testRLPolicy(t), func(_ map[string]json.RawMessage, h map[string]any) {
		h["feature_dim"] = features.Dim + 3
	})
	if _, err := LoadModel(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "features") {
		t.Fatalf("wrong-dimension artifact accepted (err=%v)", err)
	}
}

func TestLoadModelRejectsTamperedPayload(t *testing.T) {
	// An artifact whose payload was swapped for different weights must be
	// rejected: the recomputed content version no longer matches the header.
	variantNet := nn.New(nn.Config{Inputs: features.Dim, Hidden: []int{16, 8}, Outputs: 2, Dueling: true, Seed: 99})
	variant, err := newRLPolicy(variantNet, nil)
	if err != nil {
		t.Fatal(err)
	}
	var vbuf bytes.Buffer
	if err := SaveModel(&vbuf, variant); err != nil {
		t.Fatal(err)
	}
	var variantEnv map[string]json.RawMessage
	if err := json.Unmarshal(vbuf.Bytes(), &variantEnv); err != nil {
		t.Fatal(err)
	}
	data := tamper(t, testRLPolicy(t), func(env map[string]json.RawMessage, _ map[string]any) {
		env["network"] = variantEnv["network"]
	})
	if _, err := LoadModel(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("tampered artifact accepted (err=%v)", err)
	}
}

func TestLoadModelRejectsUnknownKind(t *testing.T) {
	data := tamper(t, AlwaysPolicy(), func(_ map[string]json.RawMessage, h map[string]any) {
		h["kind"] = "quantum"
	})
	if _, err := LoadModel(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("unknown-kind artifact accepted (err=%v)", err)
	}
}

func TestSaveModelRejectsOracleAndNil(t *testing.T) {
	var buf bytes.Buffer
	oracle := &oraclePolicy{}
	if err := SaveModel(&buf, oracle); err == nil {
		t.Fatal("oracle artifact accepted")
	}
	if err := SaveModel(&buf, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	p := testRLPolicy(t)
	if err := SaveModelFile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePolicy(t, p, got)
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
