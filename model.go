package uerl

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/rf"
)

// ModelSchemaVersion is the on-disk artifact schema. LoadModel rejects
// artifacts written under any other schema, so a serving daemon can never
// silently misread a model from a different build generation.
const ModelSchemaVersion = 1

// TrainingInfo records how a model artifact was produced.
type TrainingInfo struct {
	// Budget is the training budget name ("ci", "default", "paper").
	Budget string `json:"budget,omitempty"`
	// Seed is the world/training seed.
	Seed int64 `json:"seed,omitempty"`
	// MitigationCostNodeMinutes is the per-action cost trained against.
	MitigationCostNodeMinutes float64 `json:"mitigation_cost_node_minutes,omitempty"`
	// Restartable records the §5 restartability assumption.
	Restartable bool `json:"restartable,omitempty"`
	// KernelVersion records the nn kernel/stream version the weights were
	// trained under (nn.KernelReference or nn.KernelFast). The two streams
	// differ only in floating-point rounding, but reproducing an artifact
	// bit-for-bit requires retraining under the same version, so it is
	// pinned in the artifact. Zero means the artifact predates kernel
	// versioning (trained under the reference stream).
	KernelVersion int `json:"kernel_version,omitempty"`
}

// ModelHeader is the self-describing header of every model artifact.
type ModelHeader struct {
	// Schema is the artifact schema version (ModelSchemaVersion).
	Schema int `json:"schema"`
	// Kind is the policy family of the payload.
	Kind PolicyKind `json:"kind"`
	// FeatureDim is the Table 1 feature dimension the model was built
	// for; artifacts from a build with a different feature layout are
	// rejected at load time.
	FeatureDim int `json:"feature_dim"`
	// Version is the content-addressed model version (Policy.Version).
	Version string `json:"version"`
	// Parent is the content-addressed version of the model this artifact
	// was trained from (empty for a first-generation model). Online
	// continual learning chains versions through it: each promoted
	// candidate records the incumbent it replaced, so a fleet operator
	// can walk an artifact's lineage back to the offline seed model.
	// Parent is metadata — it does not enter the content hash, so
	// retraining that reproduces identical weights keeps the same
	// Version while still recording where it came from.
	Parent string `json:"parent,omitempty"`
	// Training optionally records the producing configuration.
	Training *TrainingInfo `json:"training,omitempty"`
}

// modelEnvelope is the full artifact: header plus kind-specific payload.
type modelEnvelope struct {
	Header ModelHeader `json:"header"`
	// Network carries the Q-network for PolicyRL.
	Network json.RawMessage `json:"network,omitempty"`
	// Forest and Threshold carry the SC20-RF / Myopic-RF payloads.
	Forest    json.RawMessage `json:"forest,omitempty"`
	Threshold float64         `json:"threshold,omitempty"`
	// MitigationCostNodeHours carries the Myopic-RF decision cost.
	MitigationCostNodeHours float64 `json:"mitigation_cost_node_hours,omitempty"`
}

// staticVersion is the version string of untrained kinds.
func staticVersion(kind PolicyKind) string {
	return fmt.Sprintf("%s.v%d", kind, ModelSchemaVersion)
}

// contentVersion content-addresses a serialized payload.
func contentVersion(kind PolicyKind, payload []byte) string {
	h := fnv.New64a()
	h.Write(payload)
	return fmt.Sprintf("%s.v%d.%016x", kind, ModelSchemaVersion, h.Sum64())
}

// networkVersion content-addresses a Q-network.
func networkVersion(kind PolicyKind, net *nn.Network) (string, error) {
	data, err := json.Marshal(net)
	if err != nil {
		return "", fmt.Errorf("uerl: hashing network: %w", err)
	}
	return contentVersion(kind, data), nil
}

// forestVersion content-addresses a random forest together with the scalar
// (threshold or mitigation cost) that completes the decision rule, so two
// artifacts that decide differently never share a version.
func forestVersion(kind PolicyKind, forest *rf.Forest, scalar float64) (string, error) {
	data, err := json.Marshal(forest)
	if err != nil {
		return "", fmt.Errorf("uerl: hashing forest: %w", err)
	}
	data = append(data, []byte(fmt.Sprintf("|%g", scalar))...)
	return contentVersion(kind, data), nil
}

// ModelParent returns the lineage parent version recorded on a policy
// (see ModelHeader.Parent), or "" for first-generation models and kinds
// without lineage.
func ModelParent(p Policy) string {
	switch q := p.(type) {
	case *rlPolicy:
		return q.parent
	case *rfPolicy:
		return q.parent
	case *myopicPolicy:
		return q.parent
	}
	return ""
}

// SetModelParent records the lineage parent version on a trained policy,
// chaining it to its predecessor (normally the Version of the model it
// was retrained from). Only the trained kinds (rl, sc20-rf, myopic-rf)
// carry lineage.
func SetModelParent(p Policy, parentVersion string) error {
	if parentVersion != "" && parentVersion == p.Version() {
		// A self-parent would make the lineage chain a cycle, and every
		// chain walker (rollback, uerlserve's lineage report) loop.
		return fmt.Errorf("uerl: model %s cannot be its own lineage parent", parentVersion)
	}
	switch q := p.(type) {
	case *rlPolicy:
		q.parent = parentVersion
	case *rfPolicy:
		q.parent = parentVersion
	case *myopicPolicy:
		q.parent = parentVersion
	default:
		return fmt.Errorf("uerl: policy kind %q carries no model lineage", p.Kind())
	}
	return nil
}

// trainingOf extracts the recorded TrainingInfo of built-in policies.
func trainingOf(p Policy) *TrainingInfo {
	switch q := p.(type) {
	case *rlPolicy:
		return q.training
	case *rfPolicy:
		return q.training
	case *myopicPolicy:
		return q.training
	}
	return nil
}

// SaveModel writes a policy as a versioned model artifact. Every built-in
// kind except the Oracle is serializable; the Oracle is a future-knowledge
// construction with no model to persist, and custom Policy implementations
// must bring their own persistence.
func SaveModel(w io.Writer, p Policy) error {
	if p == nil {
		return fmt.Errorf("uerl: nil policy")
	}
	env := modelEnvelope{Header: ModelHeader{
		Schema:     ModelSchemaVersion,
		Kind:       p.Kind(),
		FeatureDim: features.Dim,
		Version:    p.Version(),
		Parent:     ModelParent(p),
		Training:   trainingOf(p),
	}}
	switch q := p.(type) {
	case *staticPolicy:
		// Header-only artifact.
	case *rlPolicy:
		data, err := json.Marshal(q.q.Net())
		if err != nil {
			return fmt.Errorf("uerl: serializing network: %w", err)
		}
		env.Network = data
	case *rfPolicy:
		data, err := json.Marshal(q.d.Forest)
		if err != nil {
			return fmt.Errorf("uerl: serializing forest: %w", err)
		}
		env.Forest = data
		env.Threshold = q.d.Threshold
	case *myopicPolicy:
		data, err := json.Marshal(q.d.Forest)
		if err != nil {
			return fmt.Errorf("uerl: serializing forest: %w", err)
		}
		env.Forest = data
		env.MitigationCostNodeHours = q.d.MitigationCostNodeHours
	default:
		return fmt.Errorf("uerl: policy kind %q is not serializable", p.Kind())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(env)
}

// LoadModel restores a policy from a model artifact, rejecting artifacts
// whose schema version or feature dimension does not match this build.
func LoadModel(r io.Reader) (Policy, error) {
	var env modelEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("uerl: reading model artifact: %w", err)
	}
	h := env.Header
	if h.Schema != ModelSchemaVersion {
		return nil, fmt.Errorf("uerl: model artifact has schema v%d, this build reads v%d",
			h.Schema, ModelSchemaVersion)
	}
	if h.FeatureDim != features.Dim {
		return nil, fmt.Errorf("uerl: model artifact was built for %d features, this build uses %d",
			h.FeatureDim, features.Dim)
	}
	if h.Training != nil && h.Training.KernelVersion != 0 && !nn.ValidKernel(h.Training.KernelVersion) {
		return nil, fmt.Errorf("uerl: model artifact was trained under unknown kernel version %d (this build knows %d..%d)",
			h.Training.KernelVersion, nn.KernelReference, nn.KernelFast)
	}
	var p Policy
	var err error
	switch h.Kind {
	case PolicyNever:
		p = NeverPolicy()
	case PolicyAlways:
		p = AlwaysPolicy()
	case PolicyRL:
		if len(env.Network) == 0 {
			return nil, fmt.Errorf("uerl: rl model artifact has no network payload")
		}
		var net nn.Network
		if err := json.Unmarshal(env.Network, &net); err != nil {
			return nil, fmt.Errorf("uerl: restoring network: %w", err)
		}
		p, err = newRLPolicy(&net, h.Training)
	case PolicySC20RF:
		var forest *rf.Forest
		if forest, err = loadForest(env); err == nil {
			p, err = newRFPolicy(forest, env.Threshold, h.Training)
		}
	case PolicyMyopicRF:
		var forest *rf.Forest
		if forest, err = loadForest(env); err == nil {
			p, err = newMyopicPolicy(forest, env.MitigationCostNodeHours, h.Training)
		}
	default:
		return nil, fmt.Errorf("uerl: model artifact has unloadable kind %q", h.Kind)
	}
	if err != nil {
		return nil, err
	}
	// The content version is recomputed from the restored payload; a
	// mismatch with the header means the artifact was edited or corrupted.
	if h.Version != "" && p.Version() != h.Version {
		return nil, fmt.Errorf("uerl: model artifact version %q does not match its payload (%q)",
			h.Version, p.Version())
	}
	if h.Parent != "" {
		if h.Parent == h.Version {
			return nil, fmt.Errorf("uerl: model artifact %s names itself as lineage parent", h.Version)
		}
		// Lineage only exists on trained kinds; a parent on any other
		// kind means the header was edited by hand. SetModelParent also
		// re-checks the self-parent cycle against the recomputed version,
		// which catches artifacts whose header Version was stripped.
		if err := SetModelParent(p, h.Parent); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// loadForest restores and validates a forest payload.
func loadForest(env modelEnvelope) (*rf.Forest, error) {
	if len(env.Forest) == 0 {
		return nil, fmt.Errorf("uerl: %s model artifact has no forest payload", env.Header.Kind)
	}
	var forest rf.Forest
	if err := json.Unmarshal(env.Forest, &forest); err != nil {
		return nil, fmt.Errorf("uerl: restoring forest: %w", err)
	}
	if err := forest.ValidateDim(features.PredictorDim); err != nil {
		return nil, fmt.Errorf("uerl: restoring forest: %w", err)
	}
	return &forest, nil
}

// SaveModelFile writes a model artifact to path.
func SaveModelFile(path string, p Policy) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveModel(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModelFile reads a model artifact from path.
func LoadModelFile(path string) (Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
